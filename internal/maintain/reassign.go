package maintain

import (
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// Reassign is the complete three-stage heuristic: Algorithm 1 (join plan),
// Algorithm 2 (view chunk reassignment given the join plan), and Algorithm
// 3 (array chunk reassignment piggybacking on the batch's replication,
// scored over the history window).
type Reassign struct{}

// Name implements Planner.
func (Reassign) Name() string { return "reassign" }

// Plan implements Planner.
func (Reassign) Plan(ctx *Context) (*Plan, error) {
	p, _, holders := planDifferential(ctx)
	p.Strategy = "reassign"
	assignViewHomes(ctx, p)
	assignArrayHomes(ctx, p, holders)
	return p, nil
}

// ledgerFromXZ prices only the transfer (x) and join (z) variables of a
// plan.
func ledgerFromXZ(ctx *Context, p *Plan) *cluster.Ledger {
	l := cluster.NewLedger(ctx.Cluster.NumNodes(), ctx.Model)
	for _, t := range p.Transfers {
		l.ChargeTransferTo(t.From, t.To, ctx.SizeOf(t.Ref))
	}
	for i, u := range ctx.Units {
		l.ChargeJoin(p.JoinSite[i], ctx.PairBytes(u))
	}
	return l
}

// assignViewHomes is Algorithm 2: for every affected view chunk v, pick the
// merge node minimizing the objective given the join sites, charging
// differential shipping from each join site k≠j' (line 8) and merge CPU at
// j' (line 9).
//
// The ledger is initialized from the x and z variables (line 1) plus the
// shipping of the complete y = S assignment stage one optimized against;
// each view chunk is then relocated in random order by removing its
// incumbent charges and re-placing it where the objective is minimized,
// with the incumbent winning ties. Evaluating moves against the complete
// assignment (rather than constructing from an empty one) keeps the greedy
// from undoing stage one's coordination and makes placements stable across
// repeated batches — which is what lets reassignment converge.
func assignViewHomes(ctx *Context, p *Plan) {
	model := ctx.Model

	// Group the units affecting each view chunk; iterate view chunks in
	// random order (line 2).
	affected := make(map[array.ChunkKey][]int)
	var viewKeys []array.ChunkKey
	for i, u := range ctx.Units {
		for _, v := range u.Views {
			if _, seen := affected[v]; !seen {
				viewKeys = append(viewKeys, v)
			}
			affected[v] = append(affected[v], i)
		}
	}
	sort.Slice(viewKeys, func(a, b int) bool { return viewKeys[a] < viewKeys[b] })

	contribsOf := make(map[array.ChunkKey][]viewContrib, len(viewKeys))
	for _, v := range viewKeys {
		var contribs []viewContrib
		for _, i := range affected[v] {
			contribs = append(contribs, viewContrib{
				site:  p.JoinSite[i],
				bytes: ctx.PairBytes(ctx.Units[i]),
				ship:  int64(float64(ctx.PairBytes(ctx.Units[i])) * ctx.ResultScale),
			})
		}
		contribsOf[v] = contribs
	}

	// Line 1: ledger from x, z, plus the complete merge charges of the
	// y = S assignment stage one optimized against.
	ledger := ledgerFromXZ(ctx, p)
	home := make(map[array.ChunkKey]int, len(viewKeys))
	for _, v := range viewKeys {
		h := ctx.ViewHomeHint(v)
		home[v] = h
		applyViewCharges(ledger, model, contribsOf[v], h, +1)
	}

	ctx.Rng.Shuffle(len(viewKeys), func(a, b int) { viewKeys[a], viewKeys[b] = viewKeys[b], viewKeys[a] })
	for _, v := range viewKeys {
		cur := home[v]
		applyViewCharges(ledger, model, contribsOf[v], cur, -1)
		dest := chooseViewHome(ledger, model, contribsOf[v], cur)
		applyViewCharges(ledger, model, contribsOf[v], dest, +1)
		home[v] = dest
		p.ViewHome[v] = dest
	}
}

// viewContrib is one differential result that must reach a view chunk: the
// node that computed it, the B_pq of its source pair, and the shipped
// result volume (B_pq scaled by the context's ResultScale).
type viewContrib struct {
	site  int
	bytes int64
	ship  int64
}

// maxProducerSite returns the join site contributing the most bytes to a
// view chunk (node 0 when there are no contributions).
func maxProducerSite(contribs []viewContrib) int {
	byteBySite := make(map[int]int64)
	for _, c := range contribs {
		byteBySite[c.site] += c.bytes
	}
	best, bestBytes := 0, int64(-1)
	for s, b := range byteBySite {
		if b > bestBytes || (b == bestBytes && s < best) {
			best, bestBytes = s, b
		}
	}
	return best
}

// chooseViewHome evaluates every node as the merge home of one view chunk
// (Algorithm 2 lines 4-13): shipping each contribution from its join site
// when they differ (line 8) and merge CPU at the candidate (line 9).
// Relocating the chunk itself is free — reassignment piggybacks on the
// maintenance communication. incumbent (>= 0) seeds the search: another
// node wins only by strictly beating it on (objective, added load).
func chooseViewHome(ledger *cluster.Ledger, model cluster.CostModel, contribs []viewContrib, incumbent int) int {
	n := ledger.NumNodes()
	extraNtwk := make([]float64, n)
	extraCPU := make([]float64, n)
	bestCost, bestLoad := 0.0, 0.0
	dest := -1
	evaluate := func(j int) {
		for k := 0; k < n; k++ {
			extraNtwk[k] = 0
			extraCPU[k] = 0
		}
		addViewCharges(extraNtwk, extraCPU, model, contribs, j)
		optNow := ledger.CostWith(extraNtwk, extraCPU)
		// Ties on the flat max objective are broken by the smallest added
		// load, keeping view chunks with their differential producers (see
		// chooseJoinSite).
		load := sum(extraNtwk) + sum(extraCPU)
		if dest == -1 || optNow < bestCost || (optNow == bestCost && load < bestLoad) {
			bestCost = optNow
			bestLoad = load
			dest = j
		}
	}
	if incumbent >= 0 && incumbent < n {
		evaluate(incumbent)
	}
	for j := 0; j < n; j++ {
		if j != dest {
			evaluate(j)
		}
	}
	return dest
}

// applyViewCharges adds (sign=+1) or removes (sign=-1) one view chunk's
// merge charges at home j from the ledger.
func applyViewCharges(ledger *cluster.Ledger, model cluster.CostModel, contribs []viewContrib, j int, sign float64) {
	n := ledger.NumNodes()
	extraNtwk := make([]float64, n)
	extraCPU := make([]float64, n)
	addViewCharges(extraNtwk, extraCPU, model, contribs, j)
	if sign != 1 {
		for k := 0; k < n; k++ {
			extraNtwk[k] *= sign
			extraCPU[k] *= sign
		}
	}
	ledger.Apply(extraNtwk, extraCPU)
}

func addViewCharges(extraNtwk, extraCPU []float64, model cluster.CostModel, contribs []viewContrib, j int) {
	for _, c := range contribs {
		if c.site != j {
			extraNtwk[c.site] += float64(c.ship) * model.Tntwk
			extraNtwk[j] += float64(c.ship) * model.Tntwk * model.ReceiveFactor
		}
		extraCPU[j] += float64(c.bytes) * model.Tcpu
	}
}

// assignArrayHomes is Algorithm 3: score every (array chunk, view chunk)
// co-occurrence across the history window (current batch included, older
// batches exponentially decayed), then greedily co-locate chunks with their
// highest-scoring view chunk — but only onto nodes that already received a
// replica this batch, and only within a per-node CPU quota.
func assignArrayHomes(ctx *Context, p *Plan, holders *holderTracker) {
	n := ctx.Cluster.NumNodes()
	pairs, totalPairBytes := scoredPairs(ctx)
	if len(pairs) == 0 {
		fallbackDeltaHomes(ctx, p, nil)
		return
	}

	// cpu_thr: the average weighted join bytes per node, scaled by the
	// ablation factor.
	quota := make([]float64, n)
	per := ctx.Params.CPUThresholdFactor * totalPairBytes / float64(n)
	for j := range quota {
		quota[j] = per
	}

	assigned, bestView := greedyCoLocate(pairs, quota,
		func(r view.ChunkRef) int64 { return sizeOfBatchRef(ctx, r) },
		func(v array.ChunkKey) (int, bool) { return viewHomeFor(ctx, p, v) },
		func(r view.ChunkRef, j int) bool { return replicaAt(ctx, holders, r, j) },
	)
	for ref, j := range assigned {
		// Chunks whose base incarnation exists are rehomed under their base
		// identity (the staged delta merges into them wherever they land);
		// brand-new chunks are keyed by their delta ref.
		key := batchRef(ctx, ref)
		if _, ok := ctx.Cluster.Catalog().Home(ref.Array, ref.Key); ok {
			key = ref
		}
		p.ArrayRehome[key] = j
	}
	fallbackDeltaHomes(ctx, p, bestView)
}

// greedyCoLocate implements Algorithm 3 lines 5-13 as a pure function over
// pre-scored (array chunk, view chunk) pairs: pairs are visited in
// descending score (ties broken deterministically); each not-yet-assigned
// chunk is co-located with its view chunk's node if a replica already
// exists there (line 8) and the node's quota admits it (lines 8-9). It
// returns the assignments and each chunk's highest-scoring view chunk (used
// by the paper's tight-quota fallback for delta chunks).
func greedyCoLocate(pairs []scoredPair, quota []float64,
	size func(view.ChunkRef) int64,
	viewHome func(array.ChunkKey) (int, bool),
	hasReplica func(view.ChunkRef, int) bool,
) (map[view.ChunkRef]int, map[view.ChunkRef]array.ChunkKey) {
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].ref != pairs[j].ref {
			return pairs[i].ref.Less(pairs[j].ref)
		}
		return pairs[i].viewKey < pairs[j].viewKey
	})
	assigned := make(map[view.ChunkRef]int)
	bestView := make(map[view.ChunkRef]array.ChunkKey)
	for _, pr := range pairs {
		if _, ok := bestView[pr.ref]; !ok {
			bestView[pr.ref] = pr.viewKey
		}
		if _, done := assigned[pr.ref]; done {
			continue
		}
		j, ok := viewHome(pr.viewKey)
		if !ok {
			continue
		}
		ba := float64(size(pr.ref))
		if !hasReplica(pr.ref, j) {
			continue
		}
		if quota[j] < ba {
			continue
		}
		quota[j] -= ba
		assigned[pr.ref] = j
	}
	return assigned, bestView
}

// scoredPair is one (array chunk, view chunk) co-occurrence with its
// accumulated score. Refs are normalized to base-array namespaces so
// history matches across batches.
type scoredPair struct {
	ref     view.ChunkRef
	viewKey array.ChunkKey
	score   float64
}

// scoredPairs builds the Algorithm 3 scores: the current batch carries
// weight λ and the l-th previous batch (1−λ)·Decay^l — the λ split of
// Eq. 1 combined with the exponential decay of the W_l weights. It also
// returns the total weighted pair bytes used to size the CPU quota.
func scoredPairs(ctx *Context) ([]scoredPair, float64) {
	scores := make(map[view.ChunkRef]map[array.ChunkKey]float64)
	add := func(ref view.ChunkRef, v array.ChunkKey, w float64, bytes int64) {
		m, ok := scores[ref]
		if !ok {
			m = make(map[array.ChunkKey]float64)
			scores[ref] = m
		}
		m[v] += w * float64(bytes)
	}
	lambda := ctx.Params.Lambda
	totalPairBytes := 0.0
	for _, u := range ctx.Units {
		bp, bq := ctx.SizeOf(u.P), ctx.SizeOf(u.Q)
		for _, v := range u.Views {
			add(normalizeRef(ctx, u.P), v, lambda, bp)
			add(normalizeRef(ctx, u.Q), v, lambda, bq)
			totalPairBytes += lambda * float64(bp+bq)
		}
	}
	if ctx.History != nil {
		w := (1 - lambda) * ctx.Params.Decay
		for _, b := range ctx.History.batches {
			for _, pr := range b.pairs {
				add(pr.Ref, pr.View, w, pr.Bytes)
			}
			totalPairBytes += w * float64(b.pairBytes)
			w *= ctx.Params.Decay
		}
	}
	var out []scoredPair
	for ref, m := range scores {
		for v, s := range m {
			out = append(out, scoredPair{ref: ref, viewKey: v, score: s})
		}
	}
	return out, totalPairBytes
}

// normalizeRef maps delta-namespace refs to their post-merge base identity.
func normalizeRef(ctx *Context, r view.ChunkRef) view.ChunkRef {
	return view.ChunkRef{Array: ctx.BaseNameFor(r.Array), Key: r.Key}
}

// batchRef maps a normalized ref back to the namespace the executor acts
// on this batch: the delta namespace when the chunk is part of the staged
// batch, otherwise the base namespace.
func batchRef(ctx *Context, r view.ChunkRef) view.ChunkRef {
	if r.Array == ctx.BaseAlpha {
		d := view.ChunkRef{Array: ctx.DeltaAlpha, Key: r.Key}
		if _, ok := ctx.Cluster.Catalog().Home(d.Array, d.Key); ok {
			return d
		}
	}
	if r.Array == ctx.BaseBeta {
		d := view.ChunkRef{Array: ctx.DeltaBeta, Key: r.Key}
		if _, ok := ctx.Cluster.Catalog().Home(d.Array, d.Key); ok {
			return d
		}
	}
	return r
}

func sizeOfBatchRef(ctx *Context, normalized view.ChunkRef) int64 {
	return ctx.SizeOf(batchRef(ctx, normalized))
}

// replicaAt reports whether the (normalized) chunk's content will be
// resident at node j after the plan's transfers, so rehoming there is
// free. For chunks that already exist in the base array, only the base
// copy counts — the staged delta merges into it wherever it ends up. For
// brand-new chunks (staged at the coordinator, no base incarnation), the
// first placement is free, though nodes the join plan shipped them to are
// preferred so storage matches computation.
func replicaAt(ctx *Context, holders *holderTracker, normalized view.ChunkRef, j int) bool {
	if home, ok := ctx.Cluster.Catalog().Home(normalized.Array, normalized.Key); ok {
		if home == j {
			return true
		}
		return holders != nil && holders.has(normalized, j)
	}
	r := batchRef(ctx, normalized)
	if ctx.IsDelta(r) && ctx.HomeOf(r) == cluster.Coordinator {
		if holders == nil {
			return true
		}
		set := holders.set(r)
		if len(set) == 1 { // only the coordinator: never shipped
			return true
		}
		return set[j]
	}
	if holders != nil && holders.has(r, j) {
		return true
	}
	return ctx.HomeOf(r) == j
}

// viewHomeFor resolves a view chunk's destination: the current plan's
// assignment if the chunk is affected this batch, otherwise its catalog
// home (for pairs surfaced purely by history).
func viewHomeFor(ctx *Context, p *Plan, v array.ChunkKey) (int, bool) {
	if j, ok := p.ViewHome[v]; ok {
		return j, true
	}
	return ctx.ViewHomeOf(v)
}

// fallbackDeltaHomes gives every still-unassigned new delta chunk a home:
// the node of its highest-scoring view chunk when known (the paper's tight-
// quota fallback), otherwise static placement.
func fallbackDeltaHomes(ctx *Context, p *Plan, bestView map[view.ChunkRef]array.ChunkKey) {
	n := ctx.Cluster.NumNodes()
	for _, r := range ctx.DeltaRefs() {
		if !ctx.IsDelta(r) {
			continue
		}
		if _, ok := p.ArrayRehome[r]; ok {
			continue
		}
		if v, ok := bestView[normalizeRef(ctx, r)]; ok {
			if j, ok := viewHomeFor(ctx, p, v); ok {
				p.ArrayRehome[r] = j
				continue
			}
		}
		p.ArrayRehome[r] = ctx.ArrayPlacement.Place(r.Key, n)
	}
}
