package maintain

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// Transfer is one x_{ikj} assignment: chunk Ref shipped from node From to
// node To before joins run.
type Transfer struct {
	Ref  view.ChunkRef
	From int
	To   int
}

// Plan is the solved maintenance plan for one batch: the variable
// assignments of Table 1 in executable form.
type Plan struct {
	// Strategy names the planner that produced the plan.
	Strategy string
	// Transfers are the chunk replications (x variables), in order.
	Transfers []Transfer
	// JoinSite[i] is the node computing Units[i] (z variables).
	JoinSite []int
	// ViewHome assigns every affected view chunk the node where its
	// differential results merge and where the chunk lives afterwards
	// (y variables for view chunks).
	ViewHome map[array.ChunkKey]int
	// ArrayRehome assigns batch-relevant array chunks (base refs for
	// existing chunks, delta refs for new ones) their post-batch home
	// (y variables for array chunks). Entries are optional; chunks without
	// one keep their current home (or fall back to placement for new
	// chunks).
	ArrayRehome map[view.ChunkRef]int
}

// NewPlan returns an empty plan for n units.
func NewPlan(strategy string, n int) *Plan {
	return &Plan{
		Strategy:    strategy,
		JoinSite:    make([]int, n),
		ViewHome:    make(map[array.ChunkKey]int),
		ArrayRehome: make(map[view.ChunkRef]int),
	}
}

// Validate checks the plan's structural constraints against the context:
// C3/C5 (every unit has a join site in range), C2 (both chunks of a unit
// are resident at the join site after the plan's transfers), and C1 (every
// affected view chunk has exactly one home).
func (p *Plan) Validate(ctx *Context) error {
	n := ctx.Cluster.NumNodes()
	if len(p.JoinSite) != len(ctx.Units) {
		return fmt.Errorf("maintain: plan covers %d units, want %d", len(p.JoinSite), len(ctx.Units))
	}
	// Residency sets: home plus planned transfers.
	resident := make(map[view.ChunkRef]map[int]bool)
	holderSet := func(r view.ChunkRef) map[int]bool {
		s, ok := resident[r]
		if !ok {
			s = map[int]bool{ctx.HomeOf(r): true}
			resident[r] = s
		}
		return s
	}
	for _, t := range p.Transfers {
		if t.To < 0 || t.To >= n {
			return fmt.Errorf("maintain: transfer of %v to invalid node %d", t.Ref, t.To)
		}
		if !holderSet(t.Ref)[t.From] {
			return fmt.Errorf("maintain: transfer of %v from node %d which does not hold it", t.Ref, t.From)
		}
		holderSet(t.Ref)[t.To] = true
	}
	for i, u := range ctx.Units {
		k := p.JoinSite[i]
		if k < 0 || k >= n {
			return fmt.Errorf("maintain: unit %d joined at invalid node %d (C3)", i, k)
		}
		if !holderSet(u.P)[k] {
			return fmt.Errorf("maintain: unit %d chunk %v not resident at join node %d (C2)", i, u.P, k)
		}
		if !holderSet(u.Q)[k] {
			return fmt.Errorf("maintain: unit %d chunk %v not resident at join node %d (C2)", i, u.Q, k)
		}
		for _, v := range u.Views {
			home, ok := p.ViewHome[v]
			if !ok {
				return fmt.Errorf("maintain: view chunk %v has no home (C1)", v)
			}
			if home < 0 || home >= n {
				return fmt.Errorf("maintain: view chunk %v homed at invalid node %d (C1)", v, home)
			}
		}
	}
	for r, j := range p.ArrayRehome {
		if j < 0 || j >= n {
			return fmt.Errorf("maintain: chunk %v rehomed to invalid node %d", r, j)
		}
	}
	return nil
}

// Charge computes the deterministic cost ledger of executing the plan:
//
//   - each transfer charges the sender B_i·Tntwk (coordinator sends free)
//     — the x_{ikj}·B_i·Tntwk term;
//   - each unit charges its join site B_pq·Tcpu — the z_pqk·B_pq·Tcpu term;
//   - each triple (p,q,v) whose join site differs from v's home charges the
//     join site B_pq·Tntwk — the z_pqk·y_vj·B_pq·Tntwk merging term — and
//     every triple charges v's home B_pq·Tcpu of merge work (Eq. 1 omits
//     this; Algorithm 2 line 9 prices it, and the executor really performs
//     it, so the objective includes it consistently).
//
// Reassignment itself is free, as in the paper: it piggybacks on the
// replication view maintenance performs anyway ("repartitioning does not
// incur additional time"). The same function prices every strategy, so
// comparisons are apples-to-apples.
func (p *Plan) Charge(ctx *Context) *cluster.Ledger {
	l := cluster.NewLedger(ctx.Cluster.NumNodes(), ctx.Model)
	for _, t := range p.Transfers {
		l.ChargeTransferTo(t.From, t.To, ctx.SizeOf(t.Ref))
	}
	for i, u := range ctx.Units {
		k := p.JoinSite[i]
		bpq := ctx.PairBytes(u)
		l.ChargeJoin(k, bpq)
		ship := int64(float64(bpq) * ctx.ResultScale)
		for _, v := range u.Views {
			j := p.ViewHome[v]
			if j != k {
				l.ChargeTransferTo(k, j, ship)
			}
			l.ChargeJoin(j, bpq)
		}
	}
	return l
}

// Cost is shorthand for Charge(ctx).Cost().
func (p *Plan) Cost(ctx *Context) float64 { return p.Charge(ctx).Cost() }

// NumTransfers returns how many distinct chunk shipments the plan performs.
func (p *Plan) NumTransfers() int { return len(p.Transfers) }

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("plan[%s]: %d transfers, %d joins, %d view homes, %d rehomes",
		p.Strategy, len(p.Transfers), len(p.JoinSite), len(p.ViewHome), len(p.ArrayRehome))
}
