package maintain

import (
	"fmt"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// commitRec is one undo-log entry: the content of a (node, array, key) slot
// before the commit phase wrote it. had=false records that the slot was
// empty, so rollback deletes whatever the commit created there.
type commitRec struct {
	node int
	name string
	key  array.ChunkKey
	prev *array.Chunk
	had  bool
}

// committer applies the batch's mutations with write-ahead undo records:
// every put and delete first reads and logs the destination's prior
// content. The pre-image is captured before the write is attempted, so even
// an ambiguous outcome (the write applied but its ack was lost) rolls back
// cleanly. All operations are idempotent puts and deletes — no merges — so
// retrying or rolling back a partially committed batch is always safe.
type committer struct {
	cl   *cluster.Cluster
	es   *execState
	undo []commitRec
}

func (es *execState) beginCommit(cl *cluster.Cluster) *committer {
	es.cm = &committer{cl: cl, es: es}
	return es.cm
}

// write stores ch at node, recording the slot's prior content first.
// Node-down errors are returned for the caller to redirect.
//
// The pre-image read for the undo log doubles as the delta base: when the
// fabric speaks the wire protocol, only the cells that changed against the
// resident content travel (an ACHΔ patch). A patch that errors or reports
// applied=false — base drifted, delta not smaller, or a replayed patch
// finding the new content already resident — falls back to the idempotent
// full put, so retry semantics are unchanged.
func (cm *committer) write(node int, name string, key array.ChunkKey, ch *array.Chunk) error {
	resident, err := cm.cl.HasAt(node, name, key)
	if err != nil {
		return err
	}
	var prev *array.Chunk
	if resident {
		prev, err = cm.cl.GetAt(node, name, key)
		if err != nil {
			return err
		}
	}
	cm.undo = append(cm.undo, commitRec{node, name, key, prev, resident})
	// The same pre-image read that feeds the undo log retains the chunk's
	// published version for pinned snapshot readers — retention must precede
	// the overwrite so a racing reader either misses it (and then provably
	// read pre-overwrite content) or finds it.
	cm.cl.Epochs().Retain(name, key, prev)
	if prev != nil && node != cluster.Coordinator {
		if wf, ok := cm.cl.Fabric().(cluster.WireFabric); ok {
			if delta, ok := array.ComputeDelta(prev, ch); ok {
				applied, perr := wf.Patch(node, name, key, prev.ContentHash(), delta, ch.EncodedSize())
				if perr == nil && applied {
					return nil
				}
			}
		}
	}
	return cm.cl.PutAtRetry(node, name, ch)
}

// writeRedirect writes with bounded redirection: a dead target is marked
// dead and the write moves to a surviving node. Returns the node actually
// written.
func (cm *committer) writeRedirect(node int, name string, key array.ChunkKey, ch *array.Chunk) (int, error) {
	for {
		err := cm.write(node, name, key, ch)
		if err == nil {
			return node, nil
		}
		if !cluster.IsNodeDown(err) {
			return node, err
		}
		cm.es.markDead(node)
		next, aerr := cm.es.pickAlive(cm.cl.NumNodes())
		if aerr != nil {
			return node, err
		}
		node = next
	}
}

// delete evicts a chunk, recording its content for rollback. A dead node is
// tolerated: the copy it holds is unreachable anyway and the catalog no
// longer points at it. A lost delete ack is retried once — deletion is
// idempotent.
func (cm *committer) delete(node int, name string, key array.ChunkKey) error {
	resident, err := cm.cl.HasAt(node, name, key)
	if err != nil {
		if cluster.IsNodeDown(err) {
			cm.es.markDead(node)
			return nil
		}
		return err
	}
	if !resident {
		return nil
	}
	prev, err := cm.cl.GetAt(node, name, key)
	if err != nil {
		if cluster.IsNodeDown(err) {
			cm.es.markDead(node)
			return nil
		}
		return err
	}
	cm.undo = append(cm.undo, commitRec{node, name, key, prev, true})
	cm.cl.Epochs().Retain(name, key, prev)
	if _, err := cm.cl.DeleteAt(node, name, key); err != nil {
		if cluster.IsNodeDown(err) {
			cm.es.markDead(node)
			return nil
		}
		if _, rerr := cm.cl.DeleteAt(node, name, key); rerr != nil {
			return err
		}
	}
	return nil
}

// rollback undoes every logged write in reverse order, best-effort: slots
// that held content get it back, slots that were empty are re-emptied. A
// node that is down never durably received the write being undone (or, for
// ack-lost faults, receives the restore the same way it received the
// write), so errors here are not actionable and are swallowed.
func (cm *committer) rollback() {
	for i := len(cm.undo) - 1; i >= 0; i-- {
		r := cm.undo[i]
		if r.had {
			_ = cm.cl.PutAtRetry(r.node, r.name, r.prev)
		} else {
			_, _ = cm.cl.DeleteAt(r.node, r.name, r.key)
		}
	}
	cm.undo = nil
}

// commitBatch applies the staged batch: view chunks first, then the delta
// ingest (or erase) into the base arrays, then array rehomes. Iteration is
// key-sorted everywhere so a re-executed batch replays the same write
// sequence.
func commitBatch(ctx *Context, p *Plan, es *execState) error {
	cm := es.beginCommit(ctx.Cluster)
	if err := commitView(ctx, p, es, cm); err != nil {
		return err
	}
	if ctx.Deleting {
		return commitErase(ctx, es, cm)
	}
	return commitIngest(ctx, p, es, cm)
}

// commitView folds each view chunk's staged differential into its prior
// content and writes the result at the planned home (or a surviving node),
// moving chunks whose home changed and refreshing the catalog.
func commitView(ctx *Context, p *Plan, es *execState, cm *committer) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	fold, err := ctx.Def.StateMergeSpec().Func()
	if err != nil {
		return err
	}

	keys := make([]array.ChunkKey, 0, len(p.ViewHome))
	for v := range p.ViewHome {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, v := range keys {
		j := p.ViewHome[v]
		cur, exists := ctx.ViewHomeOf(v)
		es.mu.Lock()
		stageNode := es.stageHome[v]
		staged := es.stageCount[v] > 0
		es.mu.Unlock()
		if !staged && (!exists || cur == j) {
			continue // untouched and already home (or never materialized)
		}
		var old, final *array.Chunk
		if exists {
			old, _, err = cl.ReadReplica(ctx.ViewName, v, cur)
			if err != nil {
				return fmt.Errorf("maintain: reading view chunk %v: %w", v.Coord(), err)
			}
		}
		if staged {
			stagedCh, err := cl.GetAt(stageNode, es.staging, v)
			if err != nil {
				return fmt.Errorf("maintain: reading staged view chunk %v: %w", v.Coord(), err)
			}
			if old != nil {
				final = old
				if err := fold(final, stagedCh); err != nil {
					return err
				}
			} else {
				final = stagedCh
			}
		} else {
			final = old
		}
		target := j
		if es.isDead(target) {
			if target, err = es.pickAlive(cl.NumNodes()); err != nil {
				return err
			}
		}
		actual, err := cm.writeRedirect(target, ctx.ViewName, v, final)
		if err != nil {
			return err
		}
		if exists && cur != actual {
			if err := cm.delete(cur, ctx.ViewName, v); err != nil {
				return err
			}
		}
		if err := cat.SetChunk(ctx.ViewName, v, actual, final.SizeBytes(), final.NumCells()); err != nil {
			return err
		}
	}
	return nil
}

// rehash re-records a base chunk's content hash after the commit rewrote
// it: SetChunk drops the recorded hash because the content changed, which
// is fine for wire dedup (senders re-hash lazily) but starves the adaptive
// path's content-addressed join memo — a base chunk without a catalog hash
// can never hit. Only runs when a memo is active, so the all-eager path
// keeps its exact cost profile.
func rehash(ctx *Context, name string, key array.ChunkKey, ch *array.Chunk) {
	if ctx.JoinMemo == nil {
		return
	}
	_ = ctx.Cluster.Catalog().SetChunkHash(name, key, ch.ContentHash(), ch.EncodedSize())
}

// commitIngest folds the staged insert chunks into the base array and
// applies the plan's array chunk reassignments.
func commitIngest(ctx *Context, p *Plan, es *execState, cm *committer) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	n := cl.NumNodes()
	cellsFold, err := cluster.MergeSpec{Kind: cluster.MergeCells}.Func()
	if err != nil {
		return err
	}

	handled := make(map[view.ChunkRef]bool)
	for _, dn := range es.deltaNames {
		baseName := ctx.BaseNameFor(dn)
		for _, key := range cat.Keys(dn) {
			ref := view.ChunkRef{Array: dn, Key: key}
			dch, err := cl.FetchChunk(dn, key, cluster.Coordinator)
			if err != nil {
				return err
			}
			if baseHome, exists := cat.Home(baseName, key); exists {
				// Fold new cells into the existing base chunk — at its
				// rehome target when the plan moved it and a live fresh
				// replica is already there (free: the join plan shipped
				// it), else at its current home.
				baseRef := view.ChunkRef{Array: baseName, Key: key}
				target := baseHome
				if j, ok := p.ArrayRehome[baseRef]; ok && j != baseHome && !es.isDead(j) && cat.HasReplica(baseName, key, j) {
					if resident, err := cl.HasAt(j, baseName, key); err == nil && resident {
						target = j
					}
				}
				old, _, err := cl.ReadReplica(baseName, key, target)
				if err != nil {
					return err
				}
				if err := cellsFold(old, dch); err != nil {
					return err
				}
				if es.isDead(target) {
					if target, err = es.pickAlive(n); err != nil {
						return err
					}
				}
				actual, err := cm.writeRedirect(target, baseName, key, old)
				if err != nil {
					return err
				}
				if actual != baseHome {
					if err := cm.delete(baseHome, baseName, key); err != nil {
						return err
					}
				}
				if err := cat.SetChunk(baseName, key, actual, old.SizeBytes(), old.NumCells()); err != nil {
					return err
				}
				if bb, ok := old.BoundingBox(); ok {
					if err := cat.SetChunkBBox(baseName, key, bb); err != nil {
						return err
					}
				}
				rehash(ctx, baseName, key, old)
				handled[baseRef] = true
				continue
			}
			// Brand-new chunk: home from the plan, falling back to static
			// placement; dead homes divert to a survivor.
			home, ok := p.ArrayRehome[ref]
			if !ok {
				home = ctx.ArrayPlacement.Place(key, n)
			}
			if es.isDead(home) {
				if home, err = es.pickAlive(n); err != nil {
					return err
				}
			}
			actual, err := cm.writeRedirect(home, baseName, key, dch)
			if err != nil {
				return err
			}
			if err := cat.SetChunk(baseName, key, actual, dch.SizeBytes(), dch.NumCells()); err != nil {
				return err
			}
			if bb, ok := dch.BoundingBox(); ok {
				if err := cat.SetChunkBBox(baseName, key, bb); err != nil {
					return err
				}
			}
			rehash(ctx, baseName, key, dch)
		}
	}

	// Reassign existing base chunks that gained a replica this batch and
	// were not already handled by the delta fold above.
	for _, rh := range sortedRehomes(p.ArrayRehome) {
		ref, j := rh.ref, rh.to
		if ctx.IsDelta(ref) || handled[ref] {
			continue
		}
		cur, exists := cat.Home(ref.Array, ref.Key)
		if !exists || cur == j {
			continue
		}
		if !cat.HasReplica(ref.Array, ref.Key, j) {
			continue // plan promised a replica; be safe if it is absent
		}
		if resident, err := cl.HasAt(j, ref.Array, ref.Key); err != nil || !resident {
			continue
		}
		if err := cm.delete(cur, ref.Array, ref.Key); err != nil {
			return err
		}
		if err := cat.Rehome(ref.Array, ref.Key, j, true); err != nil {
			return err
		}
	}
	return nil
}

// commitErase removes the staged deletion cells from the base array,
// dropping chunks that become empty.
func commitErase(ctx *Context, es *execState, cm *committer) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	eraseFold, err := cluster.MergeSpec{Kind: cluster.MergeErase}.Func()
	if err != nil {
		return err
	}
	for _, dn := range es.deltaNames {
		baseName := ctx.BaseNameFor(dn)
		for _, key := range cat.Keys(dn) {
			dch, err := cl.FetchChunk(dn, key, cluster.Coordinator)
			if err != nil {
				return err
			}
			baseHome, exists := cat.Home(baseName, key)
			if !exists {
				return fmt.Errorf("maintain: deleting from absent chunk %v of %s", key.Coord(), baseName)
			}
			old, _, err := cl.ReadReplica(baseName, key, baseHome)
			if err != nil {
				return err
			}
			if err := eraseFold(old, dch); err != nil {
				return err
			}
			if old.NumCells() == 0 {
				if err := cm.delete(baseHome, baseName, key); err != nil {
					return err
				}
				cat.DropChunk(baseName, key)
				continue
			}
			target := baseHome
			if es.isDead(target) {
				if target, err = es.pickAlive(cl.NumNodes()); err != nil {
					return err
				}
			}
			actual, err := cm.writeRedirect(target, baseName, key, old)
			if err != nil {
				return err
			}
			if actual != baseHome {
				if err := cm.delete(baseHome, baseName, key); err != nil {
					return err
				}
			}
			if err := cat.SetChunk(baseName, key, actual, old.SizeBytes(), old.NumCells()); err != nil {
				return err
			}
			if bb, ok := old.BoundingBox(); ok {
				if err := cat.SetChunkBBox(baseName, key, bb); err != nil {
					return err
				}
			}
			rehash(ctx, baseName, key, old)
		}
	}
	return nil
}

// cleanupBatch tears down the batch's scratch state best-effort: the
// staging namespace, the delta namespaces (workers and coordinator — the
// coordinator's copy used to leak), plan transfers and failover ships that
// landed away from a chunk's final home, and scratch replica entries.
// Cleanup runs after the commit point (or after a rollback), so failures
// here must never change the batch's outcome; errors are swallowed.
//
// With es.keep installed (pipelined execution), replicas the predicate
// claims survive the scrub, and the base arrays' replica records are left
// intact instead of being cleared wholesale: in-flight successor batches
// resolve transfer sources and failover reads from those records, and every
// surviving record still names a physically present copy (only the scrubbed
// ones are deleted, record and chunk together).
func cleanupBatch(ctx *Context, p *Plan, es *execState) {
	cl := ctx.Cluster
	cat := cl.Catalog()
	n := cl.NumNodes()
	tasks := make(map[int][]cluster.Task)
	for node := 0; node < n; node++ {
		node := node
		tasks[node] = append(tasks[node], func() error {
			_, _ = cl.DropArrayAt(node, es.staging)
			return nil
		})
		for _, dn := range es.deltaNames {
			dn := dn
			tasks[node] = append(tasks[node], func() error {
				_, _ = cl.DropArrayAt(node, dn)
				return nil
			})
		}
	}
	type scrub struct {
		ref view.ChunkRef
		to  int
	}
	seen := make(map[scrub]bool, len(p.Transfers)+len(es.extra))
	addScrub := func(ref view.ChunkRef, to int) {
		if ctx.IsDelta(ref) {
			return // already dropped with the namespace
		}
		s := scrub{ref, to}
		if seen[s] {
			return
		}
		seen[s] = true
		home, exists := cat.Home(ref.Array, ref.Key)
		if exists && to == home {
			return // the scratch replica became the chunk's home; keep it
		}
		if es.keep != nil && es.keep(ref, to) {
			return // an in-flight successor batch claimed this replica
		}
		tasks[to] = append(tasks[to], func() error {
			_, _ = cl.DeleteAt(to, ref.Array, ref.Key)
			cat.RemoveReplica(ref.Array, ref.Key, to)
			return nil
		})
	}
	for _, t := range p.Transfers {
		addScrub(t.Ref, t.To)
	}
	for _, x := range es.extraShips() {
		addScrub(x.ref, x.to)
	}
	_ = cl.RunPerNodeCtx(ctx.execContext(), tasks)
	for _, dn := range es.deltaNames {
		_, _ = cl.DropArrayAt(cluster.Coordinator, dn)
		cat.Drop(dn)
	}
	if es.keep == nil {
		for _, name := range []string{ctx.BaseAlpha, ctx.BaseBeta} {
			cat.ClearReplicas(name)
		}
	}
}

// rehomeEntry is one ArrayRehome assignment in deterministic order.
type rehomeEntry struct {
	ref view.ChunkRef
	to  int
}

func sortedRehomes(m map[view.ChunkRef]int) []rehomeEntry {
	out := make([]rehomeEntry, 0, len(m))
	for ref, to := range m {
		out = append(out, rehomeEntry{ref, to})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ref.Array != out[j].ref.Array {
			return out[i].ref.Array < out[j].ref.Array
		}
		return out[i].ref.Key < out[j].ref.Key
	})
	return out
}
