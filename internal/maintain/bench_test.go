package maintain

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/workload"
)

// benchContext stages one PTF-shaped batch and returns a planning context
// (planning only; no execution).
func benchContext(b *testing.B) *Context {
	b.Helper()
	cfg := workload.DefaultPTFConfig()
	cfg.RaRange, cfg.DecRange = 4000, 2000
	cfg.DetectionsPerNight = 800
	cfg.BaseNights, cfg.NumBatches = 2, 1
	data, err := workload.GeneratePTF(cfg, workload.Real)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(8, cluster.WithWorkersPerNode(2))
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
		b.Fatal(err)
	}
	def, err := workload.PTF5View(data.Schema, 2*cfg.NightLen)
	if err != nil {
		b.Fatal(err)
	}
	if err := BuildView(cl, def, cluster.HashPlacement{}); err != nil {
		b.Fatal(err)
	}
	deltaName := "PTF#bench"
	ds := *data.Schema
	ds.Name = deltaName
	if err := cl.Catalog().Register(&ds); err != nil {
		b.Fatal(err)
	}
	var chunks []*array.Chunk
	data.Batches[0].EachChunk(func(c *array.Chunk) bool {
		chunks = append(chunks, c)
		return true
	})
	if err := cl.StageDelta(deltaName, chunks); err != nil {
		b.Fatal(err)
	}
	gen := &view.UnitGen{Catalog: cl.Catalog(), Def: def,
		BaseAlpha: "PTF", BaseBeta: "PTF", DeltaAlpha: deltaName, DeltaBeta: deltaName}
	units, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(cl, def, units, "PTF", "PTF", deltaName, deltaName, def.Name, nil, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

func BenchmarkPlanBaseline(b *testing.B)     { benchPlanner(b, Baseline{}) }
func BenchmarkPlanDifferential(b *testing.B) { benchPlanner(b, Differential{}) }
func BenchmarkPlanReassign(b *testing.B)     { benchPlanner(b, Reassign{}) }

func benchPlanner(b *testing.B, p Planner) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := p.Plan(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.JoinSite) != len(ctx.Units) {
			b.Fatal("incomplete plan")
		}
	}
	b.ReportMetric(float64(len(ctx.Units)), "units")
}

func BenchmarkPlanCharge(b *testing.B) {
	ctx := benchContext(b)
	plan, err := (Reassign{}).Plan(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.Charge(ctx).Cost() <= 0 {
			b.Fatal("bad cost")
		}
	}
}
