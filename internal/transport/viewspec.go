package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"

	"github.com/arrayview/arrayview/internal/array"
)

// Mapping kinds of the wire form.
const (
	mapIdentity uint8 = iota
	mapTranslate
	mapRegrid
)

// viewSpec is the wire form of a view definition: every field is plain
// data. Schemas, aggregates, and filter conditions already are; the join
// shape travels as its structural Spec and the mapping as kind+vector.
type viewSpec struct {
	Name        string
	Alpha       *array.Schema
	Beta        *array.Schema
	Shape       *shape.Spec
	MapKind     uint8
	MapVec      []int64
	GroupBy     []string
	Aggs        []view.Aggregate
	Chunking    []int64
	FilterAlpha []view.Condition
	FilterBeta  []view.Condition
}

// EncodeDefinition serializes a view definition for shipping to a node.
func EncodeDefinition(d *view.Definition) ([]byte, error) {
	spec, err := d.Pred.Shape.Spec()
	if err != nil {
		return nil, fmt.Errorf("transport: view %s: %w", d.Name, err)
	}
	vs := viewSpec{
		Name:     d.Name,
		Alpha:    d.Alpha,
		Beta:     d.Beta,
		Shape:    spec,
		GroupBy:  d.GroupBy,
		Aggs:     d.Aggs,
		Chunking: d.Chunking,
	}
	vs.FilterAlpha, vs.FilterBeta = d.Filters()
	switch m := d.Pred.Mapping.(type) {
	case nil, simjoin.Identity:
		vs.MapKind = mapIdentity
	case simjoin.Translate:
		vs.MapKind = mapTranslate
		vs.MapVec = m.Offset
	case simjoin.Regrid:
		vs.MapKind = mapRegrid
		vs.MapVec = m.Factor
	default:
		return nil, fmt.Errorf("transport: view %s has unserializable mapping %s", d.Name, m.Name())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&vs); err != nil {
		return nil, fmt.Errorf("transport: encoding view %s: %w", d.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeDefinition rebuilds a view definition from its wire form,
// recompiling the shape predicate and attribute filters locally.
func DecodeDefinition(data []byte) (*view.Definition, error) {
	var vs viewSpec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&vs); err != nil {
		return nil, fmt.Errorf("transport: decoding view spec: %w", err)
	}
	sh, err := vs.Shape.Build()
	if err != nil {
		return nil, fmt.Errorf("transport: view %s: %w", vs.Name, err)
	}
	var mapping simjoin.Mapping
	switch vs.MapKind {
	case mapIdentity:
		mapping = simjoin.Identity{}
	case mapTranslate:
		mapping = simjoin.Translate{Offset: vs.MapVec}
	case mapRegrid:
		mapping = simjoin.Regrid{Factor: vs.MapVec}
	default:
		return nil, fmt.Errorf("transport: view %s has unknown mapping kind %d", vs.Name, vs.MapKind)
	}
	beta := vs.Beta
	if vs.Alpha != nil && vs.Beta != nil && vs.Alpha.Name == vs.Beta.Name {
		beta = vs.Alpha // self join: share the schema value like the original
	}
	d, err := view.NewDefinition(vs.Name, vs.Alpha, beta,
		simjoin.NewPred(sh, mapping), vs.GroupBy, vs.Aggs, vs.Chunking)
	if err != nil {
		return nil, fmt.Errorf("transport: rebuilding view %s: %w", vs.Name, err)
	}
	if len(vs.FilterAlpha) > 0 || len(vs.FilterBeta) > 0 {
		if err := d.SetFilters(vs.FilterAlpha, vs.FilterBeta); err != nil {
			return nil, fmt.Errorf("transport: rebuilding view %s filters: %w", vs.Name, err)
		}
	}
	return d, nil
}
