// Package transport implements a stdlib-only TCP data plane for the
// cluster: a length-prefixed binary framing protocol for shipping
// serialized chunks between nodes, a per-node daemon serving one
// storage.Store, a pooled client, and a cluster.Fabric implementation that
// routes every chunk operation over real sockets.
//
// The wire format of one frame is
//
//	u32 length | u8 type | payload
//
// with all integers big-endian (matching the chunk encoding of
// internal/array). The length covers the type byte plus the payload.
// Chunks travel in their storage serialization (array.EncodeChunk), so a
// frame's dominant cost is exactly the bytes the paper's cost model
// charges for a chunk transfer.
//
// The top bit of the type byte versions the frame: when flagCompressed is
// set the payload is per-frame deflate,
//
//	u32 length | u8 type|0x80 | u32 rawLen | deflate(payload)
//
// and rawLen is the inflated payload size. Peers that never set the flag
// produce exactly the v1 format, and every decoder accepts both, so
// compression needs no handshake: a sender turns it on per frame when it
// shrinks the payload, and a server mirrors whatever the request used.
package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// MsgType identifies a frame's message.
type MsgType uint8

// Request messages.
const (
	MsgPing MsgType = iota + 1
	MsgPutChunk
	MsgGetChunk
	MsgHasChunk
	MsgDeleteChunk
	MsgMergeDelta
	MsgKeys
	MsgDropArray
	MsgStats
	MsgRegisterView
	MsgExecuteJoin
	MsgOfferBatch
	MsgPatchChunk
	MsgGetBatch
	MsgPutBatch
	// MsgQuery asks a serve daemon to answer a shape query against the
	// current snapshot epoch; MsgSnapshot asks for its epoch/cache/admission
	// statistics. Both are read-only and therefore idempotent.
	MsgQuery
	MsgSnapshot
)

// Response messages.
const (
	MsgOK MsgType = iota + 64
	MsgErr
	MsgChunk
	MsgBool
	MsgCount
	MsgKeyList
	MsgStatsReply
	MsgChunkList
	MsgBoolList
	MsgQueryResult
	MsgSnapshotReply
)

// flagCompressed marks a frame whose payload is deflate-compressed. It
// occupies the top bit of the type byte, which no message type uses.
const flagCompressed = 0x80

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "Ping"
	case MsgPutChunk:
		return "PutChunk"
	case MsgGetChunk:
		return "GetChunk"
	case MsgHasChunk:
		return "HasChunk"
	case MsgDeleteChunk:
		return "DeleteChunk"
	case MsgMergeDelta:
		return "MergeDelta"
	case MsgKeys:
		return "Keys"
	case MsgDropArray:
		return "DropArray"
	case MsgStats:
		return "Stats"
	case MsgRegisterView:
		return "RegisterView"
	case MsgExecuteJoin:
		return "ExecuteJoin"
	case MsgOfferBatch:
		return "OfferBatch"
	case MsgPatchChunk:
		return "PatchChunk"
	case MsgGetBatch:
		return "GetBatch"
	case MsgPutBatch:
		return "PutBatch"
	case MsgQuery:
		return "Query"
	case MsgSnapshot:
		return "Snapshot"
	case MsgOK:
		return "OK"
	case MsgErr:
		return "Err"
	case MsgChunk:
		return "Chunk"
	case MsgBool:
		return "Bool"
	case MsgCount:
		return "Count"
	case MsgKeyList:
		return "KeyList"
	case MsgStatsReply:
		return "StatsReply"
	case MsgChunkList:
		return "ChunkList"
	case MsgBoolList:
		return "BoolList"
	case MsgQueryResult:
		return "QueryResult"
	case MsgSnapshotReply:
		return "SnapshotReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// maxFrame bounds one frame's type+payload size. A PTF-scale chunk is a
// few MiB serialized; 256 MiB leaves ample headroom while keeping a
// corrupted length prefix from allocating the moon.
const maxFrame = 1 << 28

// Message is the decoded form of one frame: a tagged union whose active
// fields depend on Type. Keeping it a flat struct makes the codec
// mechanical and lets property tests drive every branch with one
// generator.
type Message struct {
	Type MsgType

	// Array/Key address one chunk of one array (PutChunk, GetChunk,
	// HasChunk, DeleteChunk, MergeDelta, Keys, DropArray). For ExecuteJoin
	// they address the P side and Array2/Key2 the Q side.
	Array  string
	Key    array.ChunkKey
	Array2 string
	Key2   array.ChunkKey

	// Chunk holds one serialized chunk (PutChunk, MergeDelta request;
	// Chunk response). Chunks holds several (ChunkList).
	Chunk  []byte
	Chunks [][]byte

	// MergeDelta parameters: the declarative merge spec.
	MergeKind uint8
	MergeOps  []uint8

	// ExecuteJoin parameters.
	View string
	Both bool
	Sign float64

	// Spec is a gob-encoded view definition (RegisterView).
	Spec []byte

	// Wire-efficiency fields. Items carries batched chunk identities —
	// plus bodies for PutBatch (OfferBatch, GetBatch, PutBatch). Hash is
	// the base content hash a PatchChunk delta applies against (the delta
	// itself travels in Chunk). Flags is the BoolList response.
	Items []cluster.WireItem
	Hash  uint64
	Flags []bool

	// Response payloads.
	Flag      bool             // Bool
	Count     int64            // Count
	KeyList   []array.ChunkKey // KeyList
	NumChunks int64            // StatsReply
	Bytes     int64            // StatsReply
	Err       string           // Err

	// Serving fields. Mode is the query.Mode of a Query request (its shape
	// travels gob-encoded in Spec). Epoch tags a QueryResult with the
	// snapshot epoch it was answered at (its result chunks travel in Chunks
	// and Flag reports whether the view path was used) and a SnapshotReply
	// with the daemon's current epoch; the remaining counters are the
	// SnapshotReply statistics.
	Mode          uint8
	Epoch         uint64
	Pins          int64 // SnapshotReply: live snapshot pins
	Retained      int64 // SnapshotReply: retained chunk versions
	RetainedBytes int64 // SnapshotReply: bytes held by retained versions
	CacheHits     int64 // SnapshotReply: read-cache hits
	CacheMisses   int64 // SnapshotReply: read-cache misses
	CacheBytes    int64 // SnapshotReply: read-cache footprint
	Queries       int64 // SnapshotReply: queries admitted
	Rejected      int64 // SnapshotReply: queries rejected by admission
	// Adaptive-maintenance counters (SnapshotReply; zero when the daemon
	// maintains all-eagerly).
	HeavyChunks   int64 // classes currently heavy
	LightChunks   int64 // classes seen but light
	PendingChunks int64 // chunks with deferred deltas
	PendingCells  int64 // deferred cells outstanding
	Deferred      int64 // delta chunks routed to the pending log
	LazyMats      int64 // entries materialized on query touch
	Drained       int64 // entries materialized by drainer/conflict
	Promotions    int64 // light→heavy transitions
	Demotions     int64 // heavy→light transitions
	MemoHits      int64 // cached-join-state hits
	MemoMisses    int64 // cached-join-state misses
	// Durable-store counters (SnapshotReply; zero when the daemon runs
	// in-memory).
	DurCommits     int64 // commit barriers written
	DurRollbacks   int64 // rollback barriers written
	DurCheckpoints int64 // checkpoint compactions
	DurWALBytes    int64 // bytes appended to WALs
	DurSegBytes    int64 // chunk-body bytes appended to segments
	DurSyncs       int64 // fsyncs issued
	// Query fast-path counters (SnapshotReply; zero when the daemon serves
	// cold).
	FPViewHits          int64 // answers served from a cached assembled view
	FPViewMisses        int64 // answers that gathered the view cold
	FPViewBytes         int64 // bytes pinned by cached views
	FPViewEvictions     int64 // cached views dropped for capacity
	FPViewInvalidations int64 // cached views dropped by epoch publish
	FPMemoHits          int64 // plan-memo hits
	FPMemoMisses        int64 // plan-memo misses
	FPSolveSkips        int64 // placement solves skipped via the memo
}

// appendStr appends a u32-length-prefixed string.
func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendBytes appends a u32-length-prefixed byte slice.
func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// EncodePayload serializes the message's payload (everything after the
// type byte) into a fresh buffer.
func EncodePayload(m *Message) []byte {
	return appendPayload(nil, m)
}

// appendPayload appends the message's payload to buf, which may be a
// pooled buffer being reused across frames.
func appendPayload(buf []byte, m *Message) []byte {
	switch m.Type {
	case MsgPing, MsgStats, MsgOK, MsgSnapshot:
		// empty payload
	case MsgPutChunk:
		buf = appendStr(buf, m.Array)
		buf = appendBytes(buf, m.Chunk)
	case MsgGetChunk, MsgHasChunk, MsgDeleteChunk:
		buf = appendStr(buf, m.Array)
		buf = appendStr(buf, string(m.Key))
	case MsgMergeDelta:
		buf = appendStr(buf, m.Array)
		buf = append(buf, m.MergeKind)
		buf = appendBytes(buf, m.MergeOps)
		buf = appendBytes(buf, m.Chunk)
	case MsgKeys, MsgDropArray:
		buf = appendStr(buf, m.Array)
	case MsgRegisterView:
		buf = appendBytes(buf, m.Spec)
	case MsgOfferBatch, MsgGetBatch, MsgPutBatch:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Items)))
		for _, it := range m.Items {
			buf = appendStr(buf, it.Array)
			buf = appendStr(buf, string(it.Key))
			buf = binary.BigEndian.AppendUint64(buf, it.Hash)
			buf = binary.BigEndian.AppendUint64(buf, uint64(it.Size))
			buf = appendBytes(buf, it.Data)
		}
	case MsgPatchChunk:
		buf = appendStr(buf, m.Array)
		buf = appendStr(buf, string(m.Key))
		buf = binary.BigEndian.AppendUint64(buf, m.Hash)
		buf = appendBytes(buf, m.Chunk)
	case MsgExecuteJoin:
		buf = appendStr(buf, m.View)
		buf = appendStr(buf, m.Array)
		buf = appendStr(buf, string(m.Key))
		buf = appendStr(buf, m.Array2)
		buf = appendStr(buf, string(m.Key2))
		if m.Both {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Sign))
	case MsgErr:
		buf = appendStr(buf, m.Err)
	case MsgChunk:
		buf = appendBytes(buf, m.Chunk)
	case MsgBool:
		if m.Flag {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case MsgCount:
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Count))
	case MsgKeyList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.KeyList)))
		for _, k := range m.KeyList {
			buf = appendStr(buf, string(k))
		}
	case MsgStatsReply:
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.NumChunks))
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Bytes))
	case MsgChunkList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Chunks)))
		for _, c := range m.Chunks {
			buf = appendBytes(buf, c)
		}
	case MsgBoolList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Flags)))
		for _, f := range m.Flags {
			if f {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	case MsgQuery:
		buf = append(buf, m.Mode)
		buf = appendBytes(buf, m.Spec)
	case MsgQueryResult:
		buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
		if m.Flag {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Chunks)))
		for _, c := range m.Chunks {
			buf = appendBytes(buf, c)
		}
	case MsgSnapshotReply:
		buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
		for _, v := range []int64{m.Pins, m.Retained, m.RetainedBytes,
			m.CacheHits, m.CacheMisses, m.CacheBytes, m.Queries, m.Rejected,
			m.HeavyChunks, m.LightChunks, m.PendingChunks, m.PendingCells,
			m.Deferred, m.LazyMats, m.Drained, m.Promotions, m.Demotions,
			m.MemoHits, m.MemoMisses,
			m.DurCommits, m.DurRollbacks, m.DurCheckpoints, m.DurWALBytes,
			m.DurSegBytes, m.DurSyncs,
			m.FPViewHits, m.FPViewMisses, m.FPViewBytes, m.FPViewEvictions,
			m.FPViewInvalidations, m.FPMemoHits, m.FPMemoMisses,
			m.FPSolveSkips} {
			buf = binary.BigEndian.AppendUint64(buf, uint64(v))
		}
	}
	return buf
}

// payloadReader consumes a payload buffer with bounds checking.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *payloadReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("transport: length %d overruns payload (%d bytes left)", n, len(r.buf)-r.off)
		return nil
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *payloadReader) str() string { return string(r.bytes()) }

func (r *payloadReader) bool() bool { return r.u8() != 0 }

// DecodePayload parses a payload into a message of the given type. The
// payload slice is not retained; byte fields are copied.
func DecodePayload(t MsgType, payload []byte) (*Message, error) {
	m := &Message{Type: t}
	r := &payloadReader{buf: payload}
	switch t {
	case MsgPing, MsgStats, MsgOK, MsgSnapshot:
		// empty payload
	case MsgPutChunk:
		m.Array = r.str()
		m.Chunk = cloneBytes(r.bytes())
	case MsgGetChunk, MsgHasChunk, MsgDeleteChunk:
		m.Array = r.str()
		m.Key = array.ChunkKey(r.str())
	case MsgMergeDelta:
		m.Array = r.str()
		m.MergeKind = r.u8()
		m.MergeOps = cloneBytes(r.bytes())
		m.Chunk = cloneBytes(r.bytes())
	case MsgKeys, MsgDropArray:
		m.Array = r.str()
	case MsgRegisterView:
		m.Spec = cloneBytes(r.bytes())
	case MsgOfferBatch, MsgGetBatch, MsgPutBatch:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: item count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			it := cluster.WireItem{
				Array: r.str(),
				Key:   array.ChunkKey(r.str()),
				Hash:  r.u64(),
				Size:  int64(r.u64()),
			}
			it.Data = cloneBytes(r.bytes())
			m.Items = append(m.Items, it)
		}
	case MsgPatchChunk:
		m.Array = r.str()
		m.Key = array.ChunkKey(r.str())
		m.Hash = r.u64()
		m.Chunk = cloneBytes(r.bytes())
	case MsgExecuteJoin:
		m.View = r.str()
		m.Array = r.str()
		m.Key = array.ChunkKey(r.str())
		m.Array2 = r.str()
		m.Key2 = array.ChunkKey(r.str())
		m.Both = r.bool()
		m.Sign = math.Float64frombits(r.u64())
	case MsgErr:
		m.Err = r.str()
	case MsgChunk:
		m.Chunk = cloneBytes(r.bytes())
	case MsgBool:
		m.Flag = r.bool()
	case MsgCount:
		m.Count = int64(r.u64())
	case MsgKeyList:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: key count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.KeyList = append(m.KeyList, array.ChunkKey(r.str()))
		}
	case MsgStatsReply:
		m.NumChunks = int64(r.u64())
		m.Bytes = int64(r.u64())
	case MsgChunkList:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: chunk count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Chunks = append(m.Chunks, cloneBytes(r.bytes()))
		}
	case MsgBoolList:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: flag count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Flags = append(m.Flags, r.bool())
		}
	case MsgQuery:
		m.Mode = r.u8()
		m.Spec = cloneBytes(r.bytes())
	case MsgQueryResult:
		m.Epoch = r.u64()
		m.Flag = r.bool()
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: chunk count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Chunks = append(m.Chunks, cloneBytes(r.bytes()))
		}
	case MsgSnapshotReply:
		m.Epoch = r.u64()
		for _, p := range []*int64{&m.Pins, &m.Retained, &m.RetainedBytes,
			&m.CacheHits, &m.CacheMisses, &m.CacheBytes, &m.Queries, &m.Rejected,
			&m.HeavyChunks, &m.LightChunks, &m.PendingChunks, &m.PendingCells,
			&m.Deferred, &m.LazyMats, &m.Drained, &m.Promotions, &m.Demotions,
			&m.MemoHits, &m.MemoMisses,
			&m.DurCommits, &m.DurRollbacks, &m.DurCheckpoints, &m.DurWALBytes,
			&m.DurSegBytes, &m.DurSyncs,
			&m.FPViewHits, &m.FPViewMisses, &m.FPViewBytes, &m.FPViewEvictions,
			&m.FPViewInvalidations, &m.FPMemoHits, &m.FPMemoMisses,
			&m.FPSolveSkips} {
			*p = int64(r.u64())
		}
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", uint8(t))
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding %s: %w", t, r.err)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("transport: %d trailing bytes after %s payload", len(payload)-r.off, t)
	}
	return m, nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// framePool recycles frame buffers across requests: WriteMessage builds
// header plus payload in one pooled buffer and issues a single Write, and
// ReadMessage reads each frame body into a pooled buffer. Pooling is safe
// because DecodePayload copies every byte field out of the payload. The
// pool stores pointers (not slices) so putting a buffer back does not
// itself allocate.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledBuf caps the capacity of buffers returned to the pool, so one
// outsized chunk frame does not pin its memory for the process lifetime.
const maxPooledBuf = 1 << 22

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	framePool.Put(bp)
}

// grownBuf reslices the pooled buffer to length n, reallocating only when
// its capacity is insufficient.
func grownBuf(bp *[]byte, n int) []byte {
	if cap(*bp) < n {
		*bp = make([]byte, n)
	} else {
		*bp = (*bp)[:n]
	}
	return *bp
}

// flatePool recycles deflate compressors (their window state is the
// expensive allocation).
var flatePool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// appendWriter adapts append-to-slice to io.Writer for the pooled deflater.
type appendWriter struct{ buf []byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	a.buf = append(a.buf, p...)
	return len(p), nil
}

// appendDeflate appends deflate(src) to dst.
func appendDeflate(dst, src []byte) ([]byte, error) {
	aw := &appendWriter{buf: dst}
	fw := flatePool.Get().(*flate.Writer)
	defer flatePool.Put(fw)
	fw.Reset(aw)
	if _, err := fw.Write(src); err != nil {
		return dst, err
	}
	if err := fw.Close(); err != nil {
		return dst, err
	}
	return aw.buf, nil
}

// WriteMessage frames and writes one message in the v1 (uncompressed)
// format. The frame is assembled in a pooled buffer and written with a
// single Write call.
func WriteMessage(w io.Writer, m *Message) error {
	_, _, err := WriteMessageOpt(w, m, 0)
	return err
}

// WriteMessageOpt frames and writes one message, compressing the payload
// when compressMin > 0, the payload is at least compressMin bytes, and
// deflate actually shrinks the frame (incompressible payloads go out
// unflagged, so the choice costs nothing on the wire). It returns the
// frame's raw (uncompressed) and wire sizes, both excluding the 4-byte
// length prefix, so callers can account compression savings as raw−wire.
func WriteMessageOpt(w io.Writer, m *Message, compressMin int) (raw, wire int, err error) {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	frame := append((*bp)[:0], 0, 0, 0, 0, uint8(m.Type))
	frame = appendPayload(frame, m)
	*bp = frame
	if len(frame)-4 > maxFrame {
		return 0, 0, fmt.Errorf("transport: %s frame of %d bytes exceeds limit", m.Type, len(frame)-4)
	}
	raw = len(frame) - 4
	payload := frame[5:]
	if compressMin > 0 && len(payload) >= compressMin {
		cp := getFrameBuf()
		defer putFrameBuf(cp)
		cf := append((*cp)[:0], 0, 0, 0, 0, uint8(m.Type)|flagCompressed)
		cf = binary.BigEndian.AppendUint32(cf, uint32(len(payload)))
		cf, cerr := appendDeflate(cf, payload)
		*cp = cf
		if cerr == nil && len(cf) < len(frame) {
			binary.BigEndian.PutUint32(cf, uint32(len(cf)-4))
			_, err = w.Write(cf)
			return raw, len(cf) - 4, err
		}
	}
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	_, err = w.Write(frame)
	return raw, raw, err
}

// ReadMessage reads and decodes one frame, accepting both the v1 and the
// compressed format. io.EOF is returned unchanged on a clean close before
// the first header byte.
func ReadMessage(r io.Reader) (*Message, error) {
	m, _, _, err := ReadMessageOpt(r)
	return m, err
}

// ReadMessageOpt reads and decodes one frame, reporting its raw
// (decompressed) and wire sizes excluding the 4-byte length prefix —
// raw > wire exactly when the sender compressed the frame. The frame body
// lands in pooled buffers reused across calls; the decoded message owns
// copies of everything it needs.
func ReadMessageOpt(r io.Reader) (m *Message, raw, wire int, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return nil, 0, 0, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return nil, 0, 0, fmt.Errorf("transport: zero-length frame")
	}
	if length > maxFrame {
		return nil, 0, 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", length)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return nil, 0, 0, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	body := grownBuf(bp, int(length-1))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, 0, fmt.Errorf("transport: truncated frame body: %w", err)
	}
	t := hdr[4]
	wire = int(length)
	raw = wire
	payload := body
	if t&flagCompressed != 0 {
		if len(body) < 4 {
			return nil, 0, 0, fmt.Errorf("transport: compressed frame of %d bytes lacks raw length", len(body))
		}
		rawLen := binary.BigEndian.Uint32(body)
		if int(rawLen) > maxFrame {
			return nil, 0, 0, fmt.Errorf("transport: compressed frame declares %d raw bytes, exceeds limit", rawLen)
		}
		rp := getFrameBuf()
		defer putFrameBuf(rp)
		out := grownBuf(rp, int(rawLen))
		fr := flate.NewReader(bytes.NewReader(body[4:]))
		if _, err := io.ReadFull(fr, out); err != nil {
			return nil, 0, 0, fmt.Errorf("transport: inflating frame: %w", err)
		}
		var probe [1]byte
		if n, _ := fr.Read(probe[:]); n != 0 {
			return nil, 0, 0, fmt.Errorf("transport: inflated frame exceeds declared %d bytes", rawLen)
		}
		_ = fr.Close()
		t &^= flagCompressed
		payload = out
		raw = 1 + int(rawLen)
	}
	m, err = DecodePayload(MsgType(t), payload)
	return m, raw, wire, err
}
