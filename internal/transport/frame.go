// Package transport implements a stdlib-only TCP data plane for the
// cluster: a length-prefixed binary framing protocol for shipping
// serialized chunks between nodes, a per-node daemon serving one
// storage.Store, a pooled client, and a cluster.Fabric implementation that
// routes every chunk operation over real sockets.
//
// The wire format of one frame is
//
//	u32 length | u8 type | payload
//
// with all integers big-endian (matching the chunk encoding of
// internal/array). The length covers the type byte plus the payload.
// Chunks travel in their storage serialization (array.EncodeChunk), so a
// frame's dominant cost is exactly the bytes the paper's cost model
// charges for a chunk transfer.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
)

// MsgType identifies a frame's message.
type MsgType uint8

// Request messages.
const (
	MsgPing MsgType = iota + 1
	MsgPutChunk
	MsgGetChunk
	MsgHasChunk
	MsgDeleteChunk
	MsgMergeDelta
	MsgKeys
	MsgDropArray
	MsgStats
	MsgRegisterView
	MsgExecuteJoin
)

// Response messages.
const (
	MsgOK MsgType = iota + 64
	MsgErr
	MsgChunk
	MsgBool
	MsgCount
	MsgKeyList
	MsgStatsReply
	MsgChunkList
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "Ping"
	case MsgPutChunk:
		return "PutChunk"
	case MsgGetChunk:
		return "GetChunk"
	case MsgHasChunk:
		return "HasChunk"
	case MsgDeleteChunk:
		return "DeleteChunk"
	case MsgMergeDelta:
		return "MergeDelta"
	case MsgKeys:
		return "Keys"
	case MsgDropArray:
		return "DropArray"
	case MsgStats:
		return "Stats"
	case MsgRegisterView:
		return "RegisterView"
	case MsgExecuteJoin:
		return "ExecuteJoin"
	case MsgOK:
		return "OK"
	case MsgErr:
		return "Err"
	case MsgChunk:
		return "Chunk"
	case MsgBool:
		return "Bool"
	case MsgCount:
		return "Count"
	case MsgKeyList:
		return "KeyList"
	case MsgStatsReply:
		return "StatsReply"
	case MsgChunkList:
		return "ChunkList"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// maxFrame bounds one frame's type+payload size. A PTF-scale chunk is a
// few MiB serialized; 256 MiB leaves ample headroom while keeping a
// corrupted length prefix from allocating the moon.
const maxFrame = 1 << 28

// Message is the decoded form of one frame: a tagged union whose active
// fields depend on Type. Keeping it a flat struct makes the codec
// mechanical and lets property tests drive every branch with one
// generator.
type Message struct {
	Type MsgType

	// Array/Key address one chunk of one array (PutChunk, GetChunk,
	// HasChunk, DeleteChunk, MergeDelta, Keys, DropArray). For ExecuteJoin
	// they address the P side and Array2/Key2 the Q side.
	Array  string
	Key    array.ChunkKey
	Array2 string
	Key2   array.ChunkKey

	// Chunk holds one serialized chunk (PutChunk, MergeDelta request;
	// Chunk response). Chunks holds several (ChunkList).
	Chunk  []byte
	Chunks [][]byte

	// MergeDelta parameters: the declarative merge spec.
	MergeKind uint8
	MergeOps  []uint8

	// ExecuteJoin parameters.
	View string
	Both bool
	Sign float64

	// Spec is a gob-encoded view definition (RegisterView).
	Spec []byte

	// Response payloads.
	Flag      bool             // Bool
	Count     int64            // Count
	KeyList   []array.ChunkKey // KeyList
	NumChunks int64            // StatsReply
	Bytes     int64            // StatsReply
	Err       string           // Err
}

// appendStr appends a u32-length-prefixed string.
func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendBytes appends a u32-length-prefixed byte slice.
func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// EncodePayload serializes the message's payload (everything after the
// type byte) into a fresh buffer.
func EncodePayload(m *Message) []byte {
	return appendPayload(nil, m)
}

// appendPayload appends the message's payload to buf, which may be a
// pooled buffer being reused across frames.
func appendPayload(buf []byte, m *Message) []byte {
	switch m.Type {
	case MsgPing, MsgStats, MsgOK:
		// empty payload
	case MsgPutChunk:
		buf = appendStr(buf, m.Array)
		buf = appendBytes(buf, m.Chunk)
	case MsgGetChunk, MsgHasChunk, MsgDeleteChunk:
		buf = appendStr(buf, m.Array)
		buf = appendStr(buf, string(m.Key))
	case MsgMergeDelta:
		buf = appendStr(buf, m.Array)
		buf = append(buf, m.MergeKind)
		buf = appendBytes(buf, m.MergeOps)
		buf = appendBytes(buf, m.Chunk)
	case MsgKeys, MsgDropArray:
		buf = appendStr(buf, m.Array)
	case MsgRegisterView:
		buf = appendBytes(buf, m.Spec)
	case MsgExecuteJoin:
		buf = appendStr(buf, m.View)
		buf = appendStr(buf, m.Array)
		buf = appendStr(buf, string(m.Key))
		buf = appendStr(buf, m.Array2)
		buf = appendStr(buf, string(m.Key2))
		if m.Both {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Sign))
	case MsgErr:
		buf = appendStr(buf, m.Err)
	case MsgChunk:
		buf = appendBytes(buf, m.Chunk)
	case MsgBool:
		if m.Flag {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case MsgCount:
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Count))
	case MsgKeyList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.KeyList)))
		for _, k := range m.KeyList {
			buf = appendStr(buf, string(k))
		}
	case MsgStatsReply:
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.NumChunks))
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Bytes))
	case MsgChunkList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Chunks)))
		for _, c := range m.Chunks {
			buf = appendBytes(buf, c)
		}
	}
	return buf
}

// payloadReader consumes a payload buffer with bounds checking.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *payloadReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("transport: truncated payload at byte %d", r.off)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("transport: length %d overruns payload (%d bytes left)", n, len(r.buf)-r.off)
		return nil
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *payloadReader) str() string { return string(r.bytes()) }

func (r *payloadReader) bool() bool { return r.u8() != 0 }

// DecodePayload parses a payload into a message of the given type. The
// payload slice is not retained; byte fields are copied.
func DecodePayload(t MsgType, payload []byte) (*Message, error) {
	m := &Message{Type: t}
	r := &payloadReader{buf: payload}
	switch t {
	case MsgPing, MsgStats, MsgOK:
		// empty payload
	case MsgPutChunk:
		m.Array = r.str()
		m.Chunk = cloneBytes(r.bytes())
	case MsgGetChunk, MsgHasChunk, MsgDeleteChunk:
		m.Array = r.str()
		m.Key = array.ChunkKey(r.str())
	case MsgMergeDelta:
		m.Array = r.str()
		m.MergeKind = r.u8()
		m.MergeOps = cloneBytes(r.bytes())
		m.Chunk = cloneBytes(r.bytes())
	case MsgKeys, MsgDropArray:
		m.Array = r.str()
	case MsgRegisterView:
		m.Spec = cloneBytes(r.bytes())
	case MsgExecuteJoin:
		m.View = r.str()
		m.Array = r.str()
		m.Key = array.ChunkKey(r.str())
		m.Array2 = r.str()
		m.Key2 = array.ChunkKey(r.str())
		m.Both = r.bool()
		m.Sign = math.Float64frombits(r.u64())
	case MsgErr:
		m.Err = r.str()
	case MsgChunk:
		m.Chunk = cloneBytes(r.bytes())
	case MsgBool:
		m.Flag = r.bool()
	case MsgCount:
		m.Count = int64(r.u64())
	case MsgKeyList:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: key count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.KeyList = append(m.KeyList, array.ChunkKey(r.str()))
		}
	case MsgStatsReply:
		m.NumChunks = int64(r.u64())
		m.Bytes = int64(r.u64())
	case MsgChunkList:
		n := int(r.u32())
		if r.err == nil && n > len(payload) {
			return nil, fmt.Errorf("transport: chunk count %d exceeds payload size", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Chunks = append(m.Chunks, cloneBytes(r.bytes()))
		}
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", uint8(t))
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding %s: %w", t, r.err)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("transport: %d trailing bytes after %s payload", len(payload)-r.off, t)
	}
	return m, nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// framePool recycles frame buffers across requests: WriteMessage builds
// header plus payload in one pooled buffer and issues a single Write, and
// ReadMessage reads each frame body into a pooled buffer. Pooling is safe
// because DecodePayload copies every byte field out of the payload. The
// pool stores pointers (not slices) so putting a buffer back does not
// itself allocate.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledBuf caps the capacity of buffers returned to the pool, so one
// outsized chunk frame does not pin its memory for the process lifetime.
const maxPooledBuf = 1 << 22

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	framePool.Put(bp)
}

// grownBuf reslices the pooled buffer to length n, reallocating only when
// its capacity is insufficient.
func grownBuf(bp *[]byte, n int) []byte {
	if cap(*bp) < n {
		*bp = make([]byte, n)
	} else {
		*bp = (*bp)[:n]
	}
	return *bp
}

// WriteMessage frames and writes one message. The frame is assembled in a
// pooled buffer and written with a single Write call.
func WriteMessage(w io.Writer, m *Message) error {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	frame := append((*bp)[:0], 0, 0, 0, 0, uint8(m.Type))
	frame = appendPayload(frame, m)
	*bp = frame
	if len(frame)-4 > maxFrame {
		return fmt.Errorf("transport: %s frame of %d bytes exceeds limit", m.Type, len(frame)-4)
	}
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

// ReadMessage reads and decodes one frame. io.EOF is returned unchanged on
// a clean close before the first header byte. The frame body lands in a
// pooled buffer that is reused across calls; the decoded message owns
// copies of everything it needs.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return nil, fmt.Errorf("transport: zero-length frame")
	}
	if length > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", length)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return nil, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	payload := grownBuf(bp, int(length-1))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: truncated frame body: %w", err)
	}
	return DecodePayload(MsgType(hdr[4]), payload)
}
