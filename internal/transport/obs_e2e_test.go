package transport_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/transport"
)

// fetchStats GETs the node's metrics endpoint and decodes the snapshot.
func fetchStats(t *testing.T, url string) transport.ServerStats {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var st transport.ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding %s: %v\n%s", url, err, body)
	}
	return st
}

// TestMetricsEndpointCountersMove drives the ivmnode metrics endpoint end
// to end: start loopback daemons with an HTTP metrics listener on one of
// them, maintain a batch through the TCP fabric, and check that the
// node's counters observed over HTTP actually moved.
func TestMetricsEndpointCountersMove(t *testing.T) {
	const nodes = 3
	lc, err := transport.StartLoopback(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	ms, err := transport.StartMetrics("127.0.0.1:0", lc.Servers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	url := "http://" + ms.Addr()

	before := fetchStats(t, url)

	fab, err := lc.Fabric(transport.DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	cl, err := cluster.New(nodes, cluster.WithWorkersPerNode(2), cluster.WithFabric(fab))
	if err != nil {
		t.Fatal(err)
	}
	_, batch := e2eData(t)
	_, reports := runSequence(t, cl, "reassign", []*array.Array{batch})

	after := fetchStats(t, url)
	if after.FramesIn <= before.FramesIn {
		t.Errorf("FramesIn did not move: before=%d after=%d", before.FramesIn, after.FramesIn)
	}
	if after.BytesIn <= before.BytesIn {
		t.Errorf("BytesIn did not move: before=%d after=%d", before.BytesIn, after.BytesIn)
	}
	if after.StoreChunks == 0 {
		t.Error("StoreChunks = 0 after loading an array over the fabric")
	}
	total := int64(0)
	for _, n := range after.Requests {
		total += n
	}
	if total == 0 {
		t.Error("no per-type requests recorded on the server")
	}
	if after.Requests["PutChunk"] == 0 {
		t.Errorf("Requests[PutChunk] = 0; requests = %v", after.Requests)
	}

	// The maintained batch must carry a phase trace with the join phase
	// and at least one per-node task timing.
	rep := reports[0]
	if rep.Trace == nil {
		t.Fatal("report has no trace")
	}
	if rep.Trace.PhaseSeconds(obs.PhaseJoin) <= 0 {
		t.Errorf("join phase has no wall-clock; phases = %v", rep.Trace.Phases())
	}
	if len(rep.Trace.Nodes()) == 0 {
		t.Error("trace has no per-node task timings")
	}

	// And the fabric-side counters surfaced through cluster.FabricStats
	// must agree that traffic happened.
	for node := 0; node < nodes; node++ {
		st, err := cl.Fabric().Stats(node)
		if err != nil {
			t.Fatalf("fabric stats node %d: %v", node, err)
		}
		if st.Net.TotalRequests() == 0 {
			t.Errorf("node %d: fabric counters show no requests", node)
		}
		if st.Net.BytesOut == 0 {
			t.Errorf("node %d: fabric counters show no bytes out", node)
		}
	}
}

// Regression: Transfer used to trust the catalog's replica entry without
// checking the fabric. After a node daemon restart (its store is empty)
// the replica is gone; the old code turned the re-ship into a no-op and
// the next read at the destination failed far from the cause. Transfer
// must verify residency and re-ship.
func TestTransferReshipsAfterNodeRestart(t *testing.T) {
	const nodes = 2
	lc, err := transport.StartLoopback(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fab, err := lc.Fabric(transport.DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	cl, err := cluster.New(nodes, cluster.WithWorkersPerNode(1), cluster.WithFabric(fab))
	if err != nil {
		t.Fatal(err)
	}

	base, _ := e2eData(t)
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	// Pick any chunk homed on node 0 and replicate it to node 1.
	var key array.ChunkKey
	found := false
	for _, k := range cl.Catalog().Keys("cat") {
		if home, ok := cl.Catalog().Home("cat", k); ok && home == 0 {
			key, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no chunk homed on node 0")
	}
	if err := cl.Transfer(nil, "cat", key, 0, 1); err != nil {
		t.Fatal(err)
	}
	if ok, err := cl.HasAt(1, "cat", key); err != nil || !ok {
		t.Fatalf("replica not resident on node 1 after transfer: ok=%v err=%v", ok, err)
	}

	// Genuinely restart the node-1 daemon: kill it and bring a new process
	// instance up on the same address with a fresh, empty store. The
	// coordinator's catalog still lists the replica, and the fabric's
	// pooled connections to the old daemon are now dead — both of which
	// the re-ship path has to cope with.
	addr := lc.Servers[1].Addr()
	if err := lc.Servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := transport.NewNodeServer(storage.NewStore(), nil)
	var lerr error
	for attempt := 0; attempt < 50; attempt++ {
		if lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("rebinding %s after restart: %v", addr, lerr)
	}
	lc.Servers[1] = srv2 // lc.Close tears the new daemon down
	if !cl.Catalog().HasReplica("cat", key, 1) {
		t.Fatal("catalog lost the replica entry; test setup broken")
	}
	if resident, err := cl.HasAt(1, "cat", key); err != nil {
		t.Fatalf("HasAt over restarted daemon: %v", err)
	} else if resident {
		t.Fatal("restarted daemon still holds the chunk — restart was not genuine")
	}

	// Pre-fix this was a silent no-op and the GetAt below failed.
	if err := cl.Transfer(nil, "cat", key, 0, 1); err != nil {
		t.Fatalf("re-transfer after restart: %v", err)
	}
	ch, err := cl.GetAt(1, "cat", key)
	if err != nil {
		t.Fatalf("GetAt(1) after re-transfer: %v", err)
	}
	if ch == nil || ch.NumCells() == 0 {
		t.Fatal("re-shipped chunk is empty")
	}
}
