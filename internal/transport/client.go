package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/obs"
)

// RemoteError is an application-level failure reported by the node (the
// request reached the server and was executed). Remote errors are never
// retried.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// ClientConfig tunes a Client.
type ClientConfig struct {
	// PoolSize caps the idle connections kept to the node (default 4).
	PoolSize int
	// DialTimeout bounds establishing a connection (default 5 seconds).
	DialTimeout time.Duration
	// Timeout bounds one request/response round trip (default 60 seconds).
	Timeout time.Duration
	// MaxRetries is how many times a transiently-failed request is retried
	// (default 2; 0 disables retries, negative also disables).
	MaxRetries int
	// RetryBackoff is the first retry's base delay, doubled per attempt
	// with uniform jitter in [base/2, base] to avoid retry synchronization
	// (default 20 milliseconds).
	RetryBackoff time.Duration
	// Compress enables per-frame deflate on request payloads of at least
	// CompressMin bytes when it shrinks the frame. Servers mirror the
	// request's compression on their response, so one knob covers both
	// directions. Old peers are unaffected: uncompressed frames are the
	// unchanged v1 format.
	Compress bool
	// CompressMin is the smallest payload worth deflating (default 512;
	// small frames are all header and sub-millisecond latency).
	CompressMin int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.CompressMin <= 0 {
		c.CompressMin = 512
	}
	return c
}

// DefaultClientConfig returns the default tuning (retries enabled).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{MaxRetries: 2}.withDefaults()
}

// ClientStats is a snapshot of one client's cumulative wire counters.
type ClientStats struct {
	// Requests counts wire attempts by message type name (a retried
	// request counts once per attempt).
	Requests map[string]int64
	// BytesOut and BytesIn are raw socket bytes written and read.
	BytesOut, BytesIn int64
	// FramesOut and FramesIn count fully written requests and fully read
	// responses.
	FramesOut, FramesIn int64
	// Retries counts re-attempts after a transient failure.
	Retries int64
	// Dials counts established connections (the first connection included).
	Dials int64
	// PoolHits and PoolMisses describe idle-connection reuse.
	PoolHits, PoolMisses int64
	// RemoteErrors counts application failures reported by the node.
	RemoteErrors int64
	// BytesSavedCompress is raw frame bytes minus wire frame bytes across
	// both directions — what per-frame compression kept off the wire.
	BytesSavedCompress int64
}

// clientCounters is the live atomic form of ClientStats.
type clientCounters struct {
	mu       sync.Mutex
	requests map[MsgType]int64

	bytesOut, bytesIn   obs.Counter
	framesOut, framesIn obs.Counter
	retries             obs.Counter
	dials               obs.Counter
	poolHits, poolMiss  obs.Counter
	remoteErrs          obs.Counter
	savedCompress       obs.Counter
}

func (c *clientCounters) countRequest(t MsgType) {
	c.mu.Lock()
	if c.requests == nil {
		c.requests = make(map[MsgType]int64)
	}
	c.requests[t]++
	c.mu.Unlock()
}

func (c *clientCounters) snapshot() ClientStats {
	c.mu.Lock()
	reqs := make(map[string]int64, len(c.requests))
	for t, n := range c.requests {
		reqs[t.String()] = n
	}
	c.mu.Unlock()
	return ClientStats{
		Requests:           reqs,
		BytesOut:           c.bytesOut.Load(),
		BytesIn:            c.bytesIn.Load(),
		FramesOut:          c.framesOut.Load(),
		FramesIn:           c.framesIn.Load(),
		Retries:            c.retries.Load(),
		Dials:              c.dials.Load(),
		PoolHits:           c.poolHits.Load(),
		PoolMisses:         c.poolMiss.Load(),
		RemoteErrors:       c.remoteErrs.Load(),
		BytesSavedCompress: c.savedCompress.Load(),
	}
}

// countingConn wraps a connection so every byte moved is accounted on the
// owning client, pooled reuse included.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Client is a connection-pooled client for one node. It is safe for
// concurrent use; concurrent requests beyond the pool size dial extra
// connections that are pooled on return (up to the cap) or closed.
type Client struct {
	addr string
	cfg  ClientConfig
	// dial is the connection factory; tests substitute fault-injecting
	// connections here.
	dial func() (net.Conn, error)

	stats clientCounters

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// NewClient returns a client for the node at addr. No connection is made
// until the first request.
func NewClient(addr string, cfg ClientConfig) *Client {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	c.dial = func() (net.Conn, error) {
		return net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	}
	return c
}

// Addr returns the node address.
func (c *Client) Addr() string { return c.addr }

// Stats snapshots the client's cumulative wire counters.
func (c *Client) Stats() ClientStats { return c.stats.snapshot() }

// Close closes every pooled connection. In-flight requests finish on their
// own connections.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// getConn returns a pooled connection (reused=true) or dials a new one.
func (c *Client) getConn() (conn net.Conn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, errors.New("transport: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		c.stats.poolHits.Add(1)
		return conn, true, nil
	}
	c.mu.Unlock()
	c.stats.poolMiss.Add(1)
	raw, err := c.dial()
	if err != nil {
		return nil, false, err
	}
	c.stats.dials.Add(1)
	return &countingConn{Conn: raw, in: &c.stats.bytesIn, out: &c.stats.bytesOut}, false, nil
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// idempotent reports whether re-executing the request on the server is
// harmless. MergeDelta folds state additively, so applying it twice
// corrupts the view — it must never be retried once the request may have
// been processed. The wire-efficiency requests are all idempotent:
// offers and encoded puts are content-addressed overwrites, and a
// replayed PatchChunk finds the post-patch hash resident, reports
// applied=false, and the caller's full-ship fallback lands identical
// content.
func idempotent(t MsgType) bool {
	switch t {
	case MsgPing, MsgPutChunk, MsgGetChunk, MsgHasChunk, MsgDeleteChunk,
		MsgKeys, MsgDropArray, MsgStats, MsgRegisterView, MsgExecuteJoin,
		MsgOfferBatch, MsgPatchChunk, MsgGetBatch, MsgPutBatch,
		MsgQuery, MsgSnapshot:
		return true
	default:
		return false
	}
}

// jitteredBackoff draws a uniform delay in [d/2, d]: exponential growth
// sets the scale, jitter keeps a burst of failed requests from retrying in
// lockstep.
func jitteredBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// Do performs one request/response round trip, retrying transient
// transport failures with jittered exponential backoff. Retry policy:
//
//   - dial failures: always retryable (nothing was sent);
//   - any failure of an idempotent request: retryable — whether or not the
//     server consumed the frame, re-executing it is harmless by
//     definition, so write failures on fresh and pooled connections alike
//     are replayed;
//   - failures of a non-idempotent request (MergeDelta) once any part of
//     the frame may have been written: never retried — the server may
//     have applied the merge even though the response was lost.
//
// A RemoteError (the server executed the request and reported an
// application failure) is returned as-is and never retried.
func (c *Client) Do(req *Message) (*Message, error) {
	return c.DoCtx(context.Background(), req)
}

// DoCtx is Do bounded by a context. The context's deadline tightens the
// per-attempt I/O deadline, cancellation interrupts an attempt blocked in
// I/O, a cancelled request is never retried, and backoff sleeps wake on
// cancellation. A connection whose request was cancelled mid-flight is
// closed, never pooled, so a poisoned deadline or a half-read response
// cannot leak into a later request.
func (c *Client) DoCtx(ctx context.Context, req *Message) (*Message, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		resp, retryable, err := c.try(ctx, req)
		if err == nil {
			return resp, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller gave up; attribute the failure to the context so
			// callers can distinguish cancellation from a dead node.
			lastErr = ctx.Err()
			break
		}
		if !retryable || attempt >= c.cfg.MaxRetries {
			break
		}
		c.stats.retries.Add(1)
		t := time.NewTimer(jitteredBackoff(backoff))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("transport: %s to %s: %w", req.Type, c.addr, ctx.Err())
		}
		backoff *= 2
	}
	return nil, fmt.Errorf("transport: %s to %s: %w", req.Type, c.addr, lastErr)
}

// try performs one attempt, reporting whether a failure is safe to retry.
func (c *Client) try(ctx context.Context, req *Message) (resp *Message, retryable bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	conn, _, err := c.getConn()
	if err != nil {
		return nil, true, err // nothing sent
	}
	c.stats.countRequest(req.Type)
	deadline := time.Now().Add(c.cfg.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		conn.Close()
		return nil, true, err // nothing sent
	}
	// Cancellation expires the connection's deadline, so an attempt blocked
	// in Read or Write fails promptly instead of waiting out the timeout.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	compressMin := 0
	if c.cfg.Compress {
		compressMin = c.cfg.CompressMin
	}
	raw, wire, err := WriteMessageOpt(conn, req, compressMin)
	if err != nil {
		conn.Close()
		// The server may have consumed part of the frame (even a stale
		// pooled connection can have accepted bytes into its receive
		// buffer), so only requests that are safe to re-execute retry.
		return nil, idempotent(req.Type), err
	}
	if raw > wire {
		c.stats.savedCompress.Add(int64(raw - wire))
	}
	c.stats.framesOut.Add(1)
	m, rraw, rwire, err := ReadMessageOpt(conn)
	if err != nil {
		conn.Close()
		return nil, idempotent(req.Type), err
	}
	if rraw > rwire {
		c.stats.savedCompress.Add(int64(rraw - rwire))
	}
	c.stats.framesIn.Add(1)
	if !stop() {
		// The cancellation callback fired (or is firing) — the connection's
		// deadline state is unknown. The response is in hand; just don't
		// pool the connection.
		conn.Close()
	} else if err := conn.SetDeadline(time.Time{}); err != nil {
		// Same: never pool a connection whose deadline state is unknown.
		conn.Close()
	} else {
		c.putConn(conn)
	}
	if m.Type == MsgErr {
		c.stats.remoteErrs.Add(1)
		return nil, false, &RemoteError{Msg: m.Err}
	}
	return m, false, nil
}
