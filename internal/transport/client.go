package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// RemoteError is an application-level failure reported by the node (the
// request reached the server and was executed). Remote errors are never
// retried.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// ClientConfig tunes a Client.
type ClientConfig struct {
	// PoolSize caps the idle connections kept to the node (default 4).
	PoolSize int
	// DialTimeout bounds establishing a connection (default 5 seconds).
	DialTimeout time.Duration
	// Timeout bounds one request/response round trip (default 60 seconds).
	Timeout time.Duration
	// MaxRetries is how many times a transiently-failed request is retried
	// (default 2; 0 disables retries, negative also disables).
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (default 20 milliseconds).
	RetryBackoff time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	return c
}

// DefaultClientConfig returns the default tuning (retries enabled).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{MaxRetries: 2}.withDefaults()
}

// Client is a connection-pooled client for one node. It is safe for
// concurrent use; concurrent requests beyond the pool size dial extra
// connections that are pooled on return (up to the cap) or closed.
type Client struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// NewClient returns a client for the node at addr. No connection is made
// until the first request.
func NewClient(addr string, cfg ClientConfig) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// Addr returns the node address.
func (c *Client) Addr() string { return c.addr }

// Close closes every pooled connection. In-flight requests finish on their
// own connections.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// getConn returns a pooled connection (reused=true) or dials a new one.
func (c *Client) getConn() (conn net.Conn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, errors.New("transport: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	conn, err = net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	return conn, false, err
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// idempotent reports whether re-executing the request on the server is
// harmless. MergeDelta folds state additively, so applying it twice
// corrupts the view — it must never be retried once the request may have
// been processed.
func idempotent(t MsgType) bool {
	switch t {
	case MsgPing, MsgPutChunk, MsgGetChunk, MsgHasChunk, MsgDeleteChunk,
		MsgKeys, MsgDropArray, MsgStats, MsgRegisterView, MsgExecuteJoin:
		return true
	default:
		return false
	}
}

// Do performs one request/response round trip, retrying transient
// transport failures with exponential backoff. Retry policy:
//
//   - dial failures: always retryable (nothing was sent);
//   - write failures on a REUSED pooled connection: retryable — the usual
//     cause is the server having closed an idle connection, detected
//     before the frame was accepted;
//   - failures after the request was written: retried only for idempotent
//     message types (a MergeDelta may have been applied even though the
//     response was lost).
//
// A RemoteError (the server executed the request and reported an
// application failure) is returned as-is and never retried.
func (c *Client) Do(req *Message) (*Message, error) {
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		resp, retryable, err := c.try(req)
		if err == nil {
			return resp, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return nil, err
		}
		lastErr = err
		if !retryable || attempt >= c.cfg.MaxRetries {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return nil, fmt.Errorf("transport: %s to %s: %w", req.Type, c.addr, lastErr)
}

// try performs one attempt, reporting whether a failure is safe to retry.
func (c *Client) try(req *Message) (resp *Message, retryable bool, err error) {
	conn, reused, err := c.getConn()
	if err != nil {
		return nil, true, err // nothing sent
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	conn.SetDeadline(deadline)
	if err := WriteMessage(conn, req); err != nil {
		conn.Close()
		// On a fresh connection the server may have consumed a partial
		// frame; only a stale pooled connection is provably safe, and then
		// only if the request is idempotent anyway — a closed idle socket
		// can still have accepted the bytes into its receive buffer.
		return nil, reused && idempotent(req.Type), err
	}
	m, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, idempotent(req.Type), err
	}
	conn.SetDeadline(time.Time{})
	c.putConn(conn)
	if m.Type == MsgErr {
		return nil, false, &RemoteError{Msg: m.Err}
	}
	return m, false, nil
}
