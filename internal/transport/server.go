package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/view"
)

// ServerConfig tunes a NodeServer.
type ServerConfig struct {
	// IdleTimeout closes a connection that sends no request for this long.
	// Zero means the default (5 minutes); negative disables the deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. Zero means the default
	// (30 seconds); negative disables the deadline.
	WriteTimeout time.Duration
}

func (c *ServerConfig) idle() time.Duration {
	switch {
	case c == nil || c.IdleTimeout == 0:
		return 5 * time.Minute
	case c.IdleTimeout < 0:
		return 0
	default:
		return c.IdleTimeout
	}
}

func (c *ServerConfig) write() time.Duration {
	switch {
	case c == nil || c.WriteTimeout == 0:
		return 30 * time.Second
	case c.WriteTimeout < 0:
		return 0
	default:
		return c.WriteTimeout
	}
}

// ServerStats is a snapshot of one node daemon's cumulative counters,
// plus its current storage footprint.
type ServerStats struct {
	// Accepted counts connections accepted since start; Active is the
	// number currently open.
	Accepted, Active int64
	// BytesIn and BytesOut are raw socket bytes read and written.
	BytesIn, BytesOut int64
	// FramesIn and FramesOut count decoded requests and written responses.
	FramesIn, FramesOut int64
	// Requests counts handled requests by message type name.
	Requests map[string]int64
	// Errors counts requests answered with an error response.
	Errors int64
	// DedupHits counts transfer offers satisfied without the body, and
	// DeltaApplied counts ACHΔ patches applied to resident chunks.
	DedupHits    int64
	DeltaApplied int64
	// BytesSavedCompress is raw frame bytes minus wire frame bytes across
	// both directions of every connection.
	BytesSavedCompress int64
	// StoreChunks and StoreBytes are the store's resident footprint.
	StoreChunks int64
	StoreBytes  int64
}

// serverCounters is the live atomic form of ServerStats.
type serverCounters struct {
	mu       sync.Mutex
	requests map[MsgType]int64

	accepted            obs.Counter
	active              obs.Counter
	bytesIn, bytesOut   obs.Counter
	framesIn, framesOut obs.Counter
	errors              obs.Counter
	dedupHits           obs.Counter
	deltaApplied        obs.Counter
	savedCompress       obs.Counter
}

func (c *serverCounters) countRequest(t MsgType) {
	c.mu.Lock()
	if c.requests == nil {
		c.requests = make(map[MsgType]int64)
	}
	c.requests[t]++
	c.mu.Unlock()
}

func (c *serverCounters) snapshot() ServerStats {
	c.mu.Lock()
	reqs := make(map[string]int64, len(c.requests))
	for t, n := range c.requests {
		reqs[t.String()] = n
	}
	c.mu.Unlock()
	return ServerStats{
		Accepted:           c.accepted.Load(),
		Active:             c.active.Load(),
		BytesIn:            c.bytesIn.Load(),
		BytesOut:           c.bytesOut.Load(),
		FramesIn:           c.framesIn.Load(),
		FramesOut:          c.framesOut.Load(),
		Requests:           reqs,
		Errors:             c.errors.Load(),
		DedupHits:          c.dedupHits.Load(),
		DeltaApplied:       c.deltaApplied.Load(),
		BytesSavedCompress: c.savedCompress.Load(),
	}
}

// NodeServer serves one worker node's chunk store over TCP. Each accepted
// connection gets its own goroutine running a request/response loop, so a
// coordinator can hold several concurrent connections to one node.
type NodeServer struct {
	store *storage.Store
	cfg   ServerConfig
	stats serverCounters

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	views    map[string]*view.Definition
	closed   bool
	draining bool
	drainDL  time.Time

	wg sync.WaitGroup
}

// NewNodeServer wraps a store in an unstarted server. A nil config uses
// the defaults.
func NewNodeServer(store *storage.Store, cfg *ServerConfig) *NodeServer {
	s := &NodeServer{
		store: store,
		conns: make(map[net.Conn]struct{}),
		views: make(map[string]*view.Definition),
	}
	if cfg != nil {
		s.cfg = *cfg
	}
	return s
}

// Store returns the served store.
func (s *NodeServer) Store() *storage.Store { return s.store }

// Stats snapshots the server's cumulative counters and the store's current
// footprint.
func (s *NodeServer) Stats() ServerStats {
	st := s.stats.snapshot()
	st.StoreChunks = int64(s.store.NumChunks())
	st.StoreBytes = s.store.Bytes()
	return st
}

// Listen binds the address ("host:port"; ":0" picks a free port) and
// starts accepting connections in the background.
func (s *NodeServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("transport: server closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("transport: server already listening")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *NodeServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Drain gracefully winds the server down: it stops accepting new
// connections immediately and gives live connections a grace window to
// finish the requests already on the wire, after which their reads time
// out and the connection goroutines exit. It returns once every
// connection has drained. Call Close afterwards to release the rest.
func (s *NodeServer) Drain(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.drainDL = time.Now().Add(grace)
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	dl := s.drainDL
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Wake connections blocked in either direction: SetDeadline applies to
	// a currently-blocked Read AND a currently-blocked Write, so a peer
	// that stopped reading (full TCP window mid-response) cannot pin a
	// connection goroutine past the grace window.
	for _, c := range conns {
		_ = c.SetDeadline(dl)
	}
	s.wg.Wait()
}

func (s *NodeServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *NodeServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.stats.accepted.Add(1)
	s.stats.active.Add(1)
	defer func() {
		conn.Close()
		s.stats.active.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	counted := &countingConn{Conn: conn, in: &s.stats.bytesIn, out: &s.stats.bytesOut}
	for {
		var deadline time.Time
		if d := s.cfg.idle(); d > 0 {
			deadline = time.Now().Add(d)
		}
		// The deadline is set under mu so it serializes against Drain:
		// a draining server's grace deadline can never be overwritten by a
		// fresh idle deadline.
		s.mu.Lock()
		if s.draining && (deadline.IsZero() || s.drainDL.Before(deadline)) {
			deadline = s.drainDL
		}
		var dlErr error
		if !deadline.IsZero() {
			dlErr = conn.SetReadDeadline(deadline)
		}
		s.mu.Unlock()
		if dlErr != nil {
			return
		}
		req, rraw, rwire, err := ReadMessageOpt(counted)
		if err != nil {
			return // EOF, deadline, or protocol error: drop the connection
		}
		if rraw > rwire {
			s.stats.savedCompress.Add(int64(rraw - rwire))
		}
		s.stats.framesIn.Add(1)
		s.stats.countRequest(req.Type)
		resp := s.handle(req)
		if resp.Type == MsgErr {
			s.stats.errors.Add(1)
		}
		// Like the read deadline above, the write deadline is clamped to the
		// drain grace under mu, so a response started after Drain cannot
		// block past the grace window behind a peer that stopped reading.
		var wdl time.Time
		if d := s.cfg.write(); d > 0 {
			wdl = time.Now().Add(d)
		}
		s.mu.Lock()
		if s.draining && (wdl.IsZero() || s.drainDL.Before(wdl)) {
			wdl = s.drainDL
		}
		s.mu.Unlock()
		if !wdl.IsZero() {
			if err := conn.SetWriteDeadline(wdl); err != nil {
				return
			}
		}
		// Mirror the request's framing: a client that compressed its
		// request gets a compressed response when that shrinks it, one
		// that spoke v1 gets pure v1 back.
		compressMin := 0
		if rraw > rwire {
			compressMin = 512
		}
		wraw, wwire, err := WriteMessageOpt(counted, resp, compressMin)
		if err != nil {
			return
		}
		if wraw > wwire {
			s.stats.savedCompress.Add(int64(wraw - wwire))
		}
		s.stats.framesOut.Add(1)
	}
}

func errMsg(format string, args ...any) *Message {
	return &Message{Type: MsgErr, Err: fmt.Sprintf(format, args...)}
}

// handle executes one request against the store.
func (s *NodeServer) handle(req *Message) *Message {
	switch req.Type {
	case MsgPing:
		return &Message{Type: MsgOK}

	case MsgPutChunk:
		c, err := array.DecodeChunk(req.Chunk)
		if err != nil {
			return errMsg("put %s: %v", req.Array, err)
		}
		if err := s.store.Put(req.Array, c); err != nil {
			return errMsg("put %s: %v", req.Array, err)
		}
		return &Message{Type: MsgOK}

	case MsgGetChunk:
		c, err := s.store.Get(req.Array, req.Key)
		if err != nil {
			return errMsg("%v", err)
		}
		return &Message{Type: MsgChunk, Chunk: array.EncodeChunk(c)}

	case MsgHasChunk:
		return &Message{Type: MsgBool, Flag: s.store.Has(req.Array, req.Key)}

	case MsgDeleteChunk:
		ok, err := s.store.Delete(req.Array, req.Key)
		if err != nil {
			return errMsg("delete %s: %v", req.Array, err)
		}
		return &Message{Type: MsgBool, Flag: ok}

	case MsgMergeDelta:
		src, err := array.DecodeChunk(req.Chunk)
		if err != nil {
			return errMsg("merge %s: %v", req.Array, err)
		}
		spec := cluster.MergeSpec{Kind: cluster.MergeKind(req.MergeKind), Ops: req.MergeOps}
		fn, err := spec.Func()
		if err != nil {
			return errMsg("merge %s: %v", req.Array, err)
		}
		if err := s.store.Merge(req.Array, src, fn); err != nil {
			return errMsg("merge %s: %v", req.Array, err)
		}
		return &Message{Type: MsgOK}

	case MsgKeys:
		return &Message{Type: MsgKeyList, KeyList: s.store.Keys(req.Array)}

	case MsgDropArray:
		n, err := s.store.DropArray(req.Array)
		if err != nil {
			return errMsg("drop %s: %v", req.Array, err)
		}
		return &Message{Type: MsgCount, Count: int64(n)}

	case MsgStats:
		return &Message{Type: MsgStatsReply,
			NumChunks: int64(s.store.NumChunks()), Bytes: s.store.Bytes()}

	case MsgRegisterView:
		def, err := DecodeDefinition(req.Spec)
		if err != nil {
			return errMsg("%v", err)
		}
		s.mu.Lock()
		s.views[def.Name] = def
		s.mu.Unlock()
		return &Message{Type: MsgOK}

	case MsgExecuteJoin:
		return s.executeJoin(req)

	case MsgOfferBatch:
		// The dedup handshake: adopt whatever the store can produce from
		// resident or sidelined content, body-free.
		resp := &Message{Type: MsgBoolList, Flags: make([]bool, len(req.Items))}
		for i, it := range req.Items {
			if _, ok := s.store.TryAdopt(it.Array, it.Key, it.Hash, it.Size); ok {
				resp.Flags[i] = true
				s.stats.dedupHits.Add(1)
			}
		}
		return resp

	case MsgPatchChunk:
		applied, err := s.store.Patch(req.Array, req.Key, req.Hash, req.Chunk)
		if err != nil {
			return errMsg("patch %s: %v", req.Array, err)
		}
		if applied {
			s.stats.deltaApplied.Add(1)
		}
		return &Message{Type: MsgBool, Flag: applied}

	case MsgGetBatch:
		resp := &Message{Type: MsgChunkList}
		for _, it := range req.Items {
			buf, ok := s.store.GetEncoded(it.Array, it.Key)
			if !ok {
				return errMsg("storage: chunk %v of %q not resident", it.Key, it.Array)
			}
			resp.Chunks = append(resp.Chunks, buf)
		}
		return resp

	case MsgPutBatch:
		// DecodePayload cloned every item's Data, so the store may retain
		// the buffers after the pooled frame is reused.
		for _, it := range req.Items {
			if err := s.store.PutEncoded(it.Array, it.Key, it.Data); err != nil {
				return errMsg("put %s: %v", it.Array, err)
			}
		}
		return &Message{Type: MsgOK}

	default:
		return errMsg("transport: unexpected request %s", req.Type)
	}
}

// executeJoin runs the join of one chunk pair locally — the pushdown that
// keeps base chunks on the node and ships only differential partials back.
func (s *NodeServer) executeJoin(req *Message) *Message {
	s.mu.Lock()
	def := s.views[req.View]
	s.mu.Unlock()
	if def == nil {
		return errMsg("transport: view %q not registered on this node", req.View)
	}
	cp, err := s.store.Get(req.Array, req.Key)
	if err != nil {
		return errMsg("join P side: %v", err)
	}
	cq, err := s.store.Get(req.Array2, req.Key2)
	if err != nil {
		return errMsg("join Q side: %v", err)
	}
	partials, err := view.JoinPartials(def, cp, cq, req.Both, req.Sign)
	if err != nil {
		return errMsg("join: %v", err)
	}
	resp := &Message{Type: MsgChunkList}
	for _, part := range partials {
		resp.Chunks = append(resp.Chunks, array.EncodeChunk(part))
	}
	return resp
}
