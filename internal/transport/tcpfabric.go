package transport

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// TCPFabric is a cluster data plane backed by real sockets: node i's chunk
// operations become framed requests to the i-th node daemon. It implements
// cluster.Fabric, cluster.JoinFabric (chunk joins push down to the node
// holding the chunks, only differential partials travel back), and
// cluster.WireFabric (dedup offers, delta patches, and batched encoded
// chunk movement).
type TCPFabric struct {
	clients []*Client
	wire    []wireSavings
}

// wireSavings is one node's wire-efficiency accounting, with the same
// semantics as the LocalFabric's counters so FabricValidation can compare
// the two fabrics field by field.
type wireSavings struct {
	dedupHits  obs.Counter
	savedDedup obs.Counter
	deltaShips obs.Counter
	savedDelta obs.Counter
	rtSaved    obs.Counter
}

var (
	_ cluster.Fabric     = (*TCPFabric)(nil)
	_ cluster.JoinFabric = (*TCPFabric)(nil)
	_ cluster.WireFabric = (*TCPFabric)(nil)
)

// NewTCPFabric connects to one node daemon per address and verifies each
// with a ping. On error, connections made so far are closed.
func NewTCPFabric(addrs []string, cfg ClientConfig) (*TCPFabric, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: fabric needs at least one node address")
	}
	f := &TCPFabric{clients: make([]*Client, len(addrs)), wire: make([]wireSavings, len(addrs))}
	for i, addr := range addrs {
		f.clients[i] = NewClient(addr, cfg)
	}
	for i := range f.clients {
		if _, err := f.clients[i].Do(&Message{Type: MsgPing}); err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: node %d unreachable: %w", i, err)
		}
	}
	return f, nil
}

// NumNodes implements cluster.Fabric.
func (f *TCPFabric) NumNodes() int { return len(f.clients) }

// Close closes every node client.
func (f *TCPFabric) Close() error {
	var first error
	for _, c := range f.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f *TCPFabric) client(node int) (*Client, error) {
	if node < 0 || node >= len(f.clients) {
		return nil, fmt.Errorf("transport: no node %d", node)
	}
	return f.clients[node], nil
}

// Put implements cluster.Fabric.
func (f *TCPFabric) Put(node int, arrayName string, ch *array.Chunk) error {
	c, err := f.client(node)
	if err != nil {
		return err
	}
	_, err = c.Do(&Message{Type: MsgPutChunk, Array: arrayName, Chunk: array.EncodeChunk(ch)})
	return err
}

// Get implements cluster.Fabric.
func (f *TCPFabric) Get(node int, arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	c, err := f.client(node)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(&Message{Type: MsgGetChunk, Array: arrayName, Key: key})
	if err != nil {
		return nil, err
	}
	return array.DecodeChunk(resp.Chunk)
}

// Has implements cluster.Fabric.
func (f *TCPFabric) Has(node int, arrayName string, key array.ChunkKey) (bool, error) {
	c, err := f.client(node)
	if err != nil {
		return false, err
	}
	resp, err := c.Do(&Message{Type: MsgHasChunk, Array: arrayName, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Delete implements cluster.Fabric.
func (f *TCPFabric) Delete(node int, arrayName string, key array.ChunkKey) (bool, error) {
	c, err := f.client(node)
	if err != nil {
		return false, err
	}
	resp, err := c.Do(&Message{Type: MsgDeleteChunk, Array: arrayName, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Merge implements cluster.Fabric. The merge semantics travel as the
// declarative spec; the node compiles and applies it against its resident
// chunk.
func (f *TCPFabric) Merge(node int, arrayName string, src *array.Chunk, spec cluster.MergeSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	c, err := f.client(node)
	if err != nil {
		return err
	}
	_, err = c.Do(&Message{
		Type: MsgMergeDelta, Array: arrayName,
		MergeKind: uint8(spec.Kind), MergeOps: spec.Ops,
		Chunk: array.EncodeChunk(src),
	})
	return err
}

// Keys implements cluster.Fabric.
func (f *TCPFabric) Keys(node int, arrayName string) ([]array.ChunkKey, error) {
	c, err := f.client(node)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(&Message{Type: MsgKeys, Array: arrayName})
	if err != nil {
		return nil, err
	}
	return resp.KeyList, nil
}

// DropArray implements cluster.Fabric.
func (f *TCPFabric) DropArray(node int, arrayName string) (int, error) {
	c, err := f.client(node)
	if err != nil {
		return 0, err
	}
	resp, err := c.Do(&Message{Type: MsgDropArray, Array: arrayName})
	if err != nil {
		return 0, err
	}
	return int(resp.Count), nil
}

// Stats implements cluster.Fabric: the node's storage footprint from the
// daemon plus this coordinator's cumulative wire counters for the node.
func (f *TCPFabric) Stats(node int) (cluster.FabricStats, error) {
	c, err := f.client(node)
	if err != nil {
		return cluster.FabricStats{}, err
	}
	resp, err := c.Do(&Message{Type: MsgStats})
	if err != nil {
		return cluster.FabricStats{}, err
	}
	cs := c.Stats()
	w := &f.wire[node]
	return cluster.FabricStats{
		NumChunks: int(resp.NumChunks),
		Bytes:     resp.Bytes,
		Net: cluster.NetCounters{
			Requests:           cs.Requests,
			BytesOut:           cs.BytesOut,
			BytesIn:            cs.BytesIn,
			FramesOut:          cs.FramesOut,
			FramesIn:           cs.FramesIn,
			Retries:            cs.Retries,
			Reconnects:         cs.Dials,
			PoolHits:           cs.PoolHits,
			PoolMisses:         cs.PoolMisses,
			RemoteErrors:       cs.RemoteErrors,
			DedupHits:          w.dedupHits.Load(),
			BytesSavedDedup:    w.savedDedup.Load(),
			DeltaShips:         w.deltaShips.Load(),
			BytesSavedDelta:    w.savedDelta.Load(),
			BytesSavedCompress: cs.BytesSavedCompress,
			RoundTripsSaved:    w.rtSaved.Load(),
		},
	}, nil
}

// OfferBatch implements cluster.WireFabric: one round trip offers every
// (key, hash) and the node answers which bodies it does not need.
func (f *TCPFabric) OfferBatch(node int, items []cluster.WireItem) ([]bool, error) {
	c, err := f.client(node)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(&Message{Type: MsgOfferBatch, Items: items})
	if err != nil {
		return nil, err
	}
	if len(resp.Flags) != len(items) {
		return nil, fmt.Errorf("transport: offer of %d items answered with %d flags", len(items), len(resp.Flags))
	}
	w := &f.wire[node]
	if n := int64(len(items)) - 1; n > 0 {
		w.rtSaved.Add(n)
	}
	for i, acc := range resp.Flags {
		if acc {
			w.dedupHits.Add(1)
			w.savedDedup.Add(items[i].Size)
			w.rtSaved.Add(1)
		}
	}
	return resp.Flags, nil
}

// Patch implements cluster.WireFabric.
func (f *TCPFabric) Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	c, err := f.client(node)
	if err != nil {
		return false, err
	}
	resp, err := c.Do(&Message{Type: MsgPatchChunk, Array: arrayName, Key: key, Hash: baseHash, Chunk: delta})
	if err != nil {
		return false, err
	}
	if resp.Flag {
		w := &f.wire[node]
		w.deltaShips.Add(1)
		if saved := fullSize - int64(len(delta)); saved > 0 {
			w.savedDelta.Add(saved)
		}
	}
	return resp.Flag, nil
}

// GetEncodedBatch implements cluster.WireFabric.
func (f *TCPFabric) GetEncodedBatch(node int, items []cluster.WireItem) ([][]byte, error) {
	c, err := f.client(node)
	if err != nil {
		return nil, err
	}
	req := &Message{Type: MsgGetBatch, Items: make([]cluster.WireItem, len(items))}
	for i, it := range items {
		// Identity only: bodies never travel in a read request.
		req.Items[i] = cluster.WireItem{Array: it.Array, Key: it.Key}
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if len(resp.Chunks) != len(items) {
		return nil, fmt.Errorf("transport: batch read of %d chunks answered with %d", len(items), len(resp.Chunks))
	}
	if n := int64(len(items)) - 1; n > 0 {
		f.wire[node].rtSaved.Add(n)
	}
	return resp.Chunks, nil
}

// PutEncodedBatch implements cluster.WireFabric.
func (f *TCPFabric) PutEncodedBatch(node int, items []cluster.WireItem) error {
	c, err := f.client(node)
	if err != nil {
		return err
	}
	if _, err := c.Do(&Message{Type: MsgPutBatch, Items: items}); err != nil {
		return err
	}
	if n := int64(len(items)) - 1; n > 0 {
		f.wire[node].rtSaved.Add(n)
	}
	return nil
}

// RegisterView ships the view definition to every node so ExecuteJoin can
// run there. Called by the maintenance layer when it attaches to a view.
func (f *TCPFabric) RegisterView(def *view.Definition) error {
	spec, err := EncodeDefinition(def)
	if err != nil {
		return err
	}
	for i, c := range f.clients {
		if _, err := c.Do(&Message{Type: MsgRegisterView, Spec: spec}); err != nil {
			return fmt.Errorf("transport: registering view on node %d: %w", i, err)
		}
	}
	return nil
}

// ExecuteJoin implements cluster.JoinFabric: the join of one chunk pair
// runs on the node holding both chunks and only the per-view-chunk
// differential partials come back.
func (f *TCPFabric) ExecuteJoin(node int, req cluster.JoinRequest) ([]*array.Chunk, error) {
	c, err := f.client(node)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(&Message{
		Type: MsgExecuteJoin, View: req.View,
		Array: req.PArray, Key: req.PKey,
		Array2: req.QArray, Key2: req.QKey,
		Both: req.BothDirections, Sign: req.Sign,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*array.Chunk, 0, len(resp.Chunks))
	for _, buf := range resp.Chunks {
		ch, err := array.DecodeChunk(buf)
		if err != nil {
			return nil, fmt.Errorf("transport: decoding join partial: %w", err)
		}
		out = append(out, ch)
	}
	return out, nil
}
