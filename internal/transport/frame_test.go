package transport

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// allTypes lists every message type of the protocol.
var allTypes = []MsgType{
	MsgPing, MsgPutChunk, MsgGetChunk, MsgHasChunk, MsgDeleteChunk,
	MsgMergeDelta, MsgKeys, MsgDropArray, MsgStats, MsgRegisterView,
	MsgExecuteJoin, MsgOfferBatch, MsgPatchChunk, MsgGetBatch, MsgPutBatch,
	MsgQuery, MsgSnapshot,
	MsgOK, MsgErr, MsgChunk, MsgBool, MsgCount, MsgKeyList,
	MsgStatsReply, MsgChunkList, MsgBoolList, MsgQueryResult, MsgSnapshotReply,
}

func quickString(r *rand.Rand) string {
	v, ok := quick.Value(reflect.TypeOf(""), r)
	if !ok {
		panic("quick.Value(string)")
	}
	return v.Interface().(string)
}

func quickBytes(r *rand.Rand) []byte {
	v, ok := quick.Value(reflect.TypeOf([]byte(nil)), r)
	if !ok {
		panic("quick.Value([]byte)")
	}
	return v.Interface().([]byte)
}

// genMessage fills only the fields the codec carries for the type, using
// testing/quick's value generator for the field contents.
func genMessage(t MsgType, r *rand.Rand) *Message {
	m := &Message{Type: t}
	switch t {
	case MsgPing, MsgStats, MsgOK, MsgSnapshot:
	case MsgPutChunk:
		m.Array = quickString(r)
		m.Chunk = quickBytes(r)
	case MsgGetChunk, MsgHasChunk, MsgDeleteChunk:
		m.Array = quickString(r)
		m.Key = array.ChunkKey(quickString(r))
	case MsgMergeDelta:
		m.Array = quickString(r)
		m.MergeKind = uint8(r.Intn(256))
		m.MergeOps = quickBytes(r)
		m.Chunk = quickBytes(r)
	case MsgKeys, MsgDropArray:
		m.Array = quickString(r)
	case MsgRegisterView:
		m.Spec = quickBytes(r)
	case MsgOfferBatch, MsgGetBatch, MsgPutBatch:
		for i, n := 0, r.Intn(5); i < n; i++ {
			m.Items = append(m.Items, cluster.WireItem{
				Array: quickString(r),
				Key:   array.ChunkKey(quickString(r)),
				Hash:  r.Uint64(),
				Size:  int64(r.Uint64()),
				Data:  quickBytes(r),
			})
		}
	case MsgPatchChunk:
		m.Array = quickString(r)
		m.Key = array.ChunkKey(quickString(r))
		m.Hash = r.Uint64()
		m.Chunk = quickBytes(r)
	case MsgExecuteJoin:
		m.View = quickString(r)
		m.Array = quickString(r)
		m.Key = array.ChunkKey(quickString(r))
		m.Array2 = quickString(r)
		m.Key2 = array.ChunkKey(quickString(r))
		m.Both = r.Intn(2) == 1
		m.Sign = math.Float64frombits(r.Uint64())
	case MsgErr:
		m.Err = quickString(r)
	case MsgChunk:
		m.Chunk = quickBytes(r)
	case MsgBool:
		m.Flag = r.Intn(2) == 1
	case MsgCount:
		m.Count = int64(r.Uint64())
	case MsgKeyList:
		for i, n := 0, r.Intn(5); i < n; i++ {
			m.KeyList = append(m.KeyList, array.ChunkKey(quickString(r)))
		}
	case MsgBoolList:
		for i, n := 0, r.Intn(6); i < n; i++ {
			m.Flags = append(m.Flags, r.Intn(2) == 1)
		}
	case MsgStatsReply:
		m.NumChunks = int64(r.Uint64())
		m.Bytes = int64(r.Uint64())
	case MsgChunkList:
		for i, n := 0, r.Intn(5); i < n; i++ {
			m.Chunks = append(m.Chunks, quickBytes(r))
		}
	case MsgQuery:
		m.Mode = uint8(r.Intn(256))
		m.Spec = quickBytes(r)
	case MsgQueryResult:
		m.Epoch = r.Uint64()
		m.Flag = r.Intn(2) == 1
		for i, n := 0, r.Intn(5); i < n; i++ {
			m.Chunks = append(m.Chunks, quickBytes(r))
		}
	case MsgSnapshotReply:
		m.Epoch = r.Uint64()
		m.Pins = int64(r.Uint64())
		m.Retained = int64(r.Uint64())
		m.RetainedBytes = int64(r.Uint64())
		m.CacheHits = int64(r.Uint64())
		m.CacheMisses = int64(r.Uint64())
		m.CacheBytes = int64(r.Uint64())
		m.Queries = int64(r.Uint64())
		m.Rejected = int64(r.Uint64())
		m.HeavyChunks = int64(r.Uint64())
		m.LightChunks = int64(r.Uint64())
		m.PendingChunks = int64(r.Uint64())
		m.PendingCells = int64(r.Uint64())
		m.Deferred = int64(r.Uint64())
		m.LazyMats = int64(r.Uint64())
		m.Drained = int64(r.Uint64())
		m.Promotions = int64(r.Uint64())
		m.Demotions = int64(r.Uint64())
		m.MemoHits = int64(r.Uint64())
		m.MemoMisses = int64(r.Uint64())
		m.DurCommits = int64(r.Uint64())
		m.DurRollbacks = int64(r.Uint64())
		m.DurCheckpoints = int64(r.Uint64())
		m.DurWALBytes = int64(r.Uint64())
		m.DurSegBytes = int64(r.Uint64())
		m.DurSyncs = int64(r.Uint64())
		m.FPViewHits = int64(r.Uint64())
		m.FPViewMisses = int64(r.Uint64())
		m.FPViewBytes = int64(r.Uint64())
		m.FPViewEvictions = int64(r.Uint64())
		m.FPViewInvalidations = int64(r.Uint64())
		m.FPMemoHits = int64(r.Uint64())
		m.FPMemoMisses = int64(r.Uint64())
		m.FPSolveSkips = int64(r.Uint64())
	default:
		panic("unhandled type in generator: " + t.String())
	}
	return m
}

// equalMessages compares two messages field by field, treating nil and
// empty slices as equal (the codec cannot distinguish them).
func equalMessages(a, b *Message) bool {
	eqBytes := func(x, y []byte) bool { return bytes.Equal(x, y) }
	if a.Type != b.Type || a.Array != b.Array || a.Key != b.Key ||
		a.Array2 != b.Array2 || a.Key2 != b.Key2 || a.View != b.View ||
		a.Both != b.Both || a.MergeKind != b.MergeKind ||
		a.Flag != b.Flag || a.Count != b.Count || a.Err != b.Err ||
		a.NumChunks != b.NumChunks || a.Bytes != b.Bytes ||
		a.Hash != b.Hash || a.Mode != b.Mode || a.Epoch != b.Epoch ||
		a.Pins != b.Pins || a.Retained != b.Retained ||
		a.RetainedBytes != b.RetainedBytes ||
		a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses ||
		a.CacheBytes != b.CacheBytes ||
		a.Queries != b.Queries || a.Rejected != b.Rejected {
		return false
	}
	if a.HeavyChunks != b.HeavyChunks || a.LightChunks != b.LightChunks ||
		a.PendingChunks != b.PendingChunks || a.PendingCells != b.PendingCells ||
		a.Deferred != b.Deferred || a.LazyMats != b.LazyMats ||
		a.Drained != b.Drained || a.Promotions != b.Promotions ||
		a.Demotions != b.Demotions ||
		a.MemoHits != b.MemoHits || a.MemoMisses != b.MemoMisses {
		return false
	}
	if a.DurCommits != b.DurCommits || a.DurRollbacks != b.DurRollbacks ||
		a.DurCheckpoints != b.DurCheckpoints || a.DurWALBytes != b.DurWALBytes ||
		a.DurSegBytes != b.DurSegBytes || a.DurSyncs != b.DurSyncs {
		return false
	}
	if a.FPViewHits != b.FPViewHits || a.FPViewMisses != b.FPViewMisses ||
		a.FPViewBytes != b.FPViewBytes || a.FPViewEvictions != b.FPViewEvictions ||
		a.FPViewInvalidations != b.FPViewInvalidations ||
		a.FPMemoHits != b.FPMemoHits || a.FPMemoMisses != b.FPMemoMisses ||
		a.FPSolveSkips != b.FPSolveSkips {
		return false
	}
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.Array != y.Array || x.Key != y.Key || x.Hash != y.Hash ||
			x.Size != y.Size || !bytes.Equal(x.Data, y.Data) {
			return false
		}
	}
	if len(a.Flags) != len(b.Flags) {
		return false
	}
	for i := range a.Flags {
		if a.Flags[i] != b.Flags[i] {
			return false
		}
	}
	// NaN-safe float comparison on the bit pattern.
	if math.Float64bits(a.Sign) != math.Float64bits(b.Sign) {
		return false
	}
	if !eqBytes(a.Chunk, b.Chunk) || !eqBytes(a.MergeOps, b.MergeOps) || !eqBytes(a.Spec, b.Spec) {
		return false
	}
	if len(a.Chunks) != len(b.Chunks) {
		return false
	}
	for i := range a.Chunks {
		if !eqBytes(a.Chunks[i], b.Chunks[i]) {
			return false
		}
	}
	if len(a.KeyList) != len(b.KeyList) {
		return false
	}
	for i := range a.KeyList {
		if a.KeyList[i] != b.KeyList[i] {
			return false
		}
	}
	return true
}

// TestFrameRoundTripQuick drives every message type through the full
// write/read path with testing/quick-generated contents.
func TestFrameRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, typ := range allTypes {
		typ := typ
		f := func() bool {
			in := genMessage(typ, r)
			var buf bytes.Buffer
			if err := WriteMessage(&buf, in); err != nil {
				t.Logf("%s: write: %v", typ, err)
				return false
			}
			out, err := ReadMessage(&buf)
			if err != nil {
				t.Logf("%s: read: %v", typ, err)
				return false
			}
			if buf.Len() != 0 {
				t.Logf("%s: %d unread bytes after frame", typ, buf.Len())
				return false
			}
			if !equalMessages(in, out) {
				t.Logf("%s: round trip mismatch:\n in: %+v\nout: %+v", typ, in, out)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", typ, err)
		}
	}
}

// TestTruncatedFrames verifies that every proper prefix of a valid frame
// decodes to a clean error, never a panic or a bogus message.
func TestTruncatedFrames(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, typ := range allTypes {
		m := genMessage(typ, r)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		frame := buf.Bytes()
		for cut := 0; cut < len(frame); cut++ {
			if _, err := ReadMessage(bytes.NewReader(frame[:cut])); err == nil {
				t.Errorf("%s: truncation at %d/%d decoded without error", typ, cut, len(frame))
			}
		}
	}
}

// TestCorruptedFrames verifies that header and payload corruption decode
// to clean errors.
func TestCorruptedFrames(t *testing.T) {
	t.Run("zero length", func(t *testing.T) {
		if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
			t.Error("zero-length frame decoded without error")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})); err == nil {
			t.Error("oversized frame decoded without error")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 1, 0xEE})); err == nil {
			t.Error("unknown message type decoded without error")
		}
	})
	t.Run("trailing garbage in payload", func(t *testing.T) {
		m := &Message{Type: MsgGetChunk, Array: "a", Key: "k"}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		// Extend the payload by one byte and fix up the length prefix.
		frame = append(frame, 0x7A)
		frame[3]++
		if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
			t.Error("frame with trailing payload bytes decoded without error")
		}
	})
	t.Run("inner length overrun", func(t *testing.T) {
		// A GetChunk whose array-name length points past the payload end.
		payload := []byte{0xFF, 0xFF, 0xFF, 0x00, 'a'}
		frame := []byte{0, 0, 0, byte(1 + len(payload)), byte(MsgGetChunk)}
		frame = append(frame, payload...)
		if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
			t.Error("frame with overrunning inner length decoded without error")
		}
	})
	t.Run("random fuzz does not panic", func(t *testing.T) {
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			n := r.Intn(64)
			buf := make([]byte, n)
			r.Read(buf)
			// Keep the claimed length sane so io.ReadFull fails fast.
			if n >= 4 {
				buf[0], buf[1] = 0, 0
			}
			_, _ = ReadMessage(bytes.NewReader(buf)) // must not panic
		}
	})
}
