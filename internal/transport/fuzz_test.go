package transport

import (
	"bytes"
	"strings"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// frameBytes encodes one message to a full frame, optionally compressed.
func frameBytes(tb testing.TB, m *Message, compressMin int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, _, err := WriteMessageOpt(&buf, m, compressMin); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadMessage throws arbitrary byte streams at the frame decoder.
// Malformed, truncated, and corrupt-compressed frames must error cleanly;
// any frame that decodes must survive a write/read round trip unchanged.
func FuzzReadMessage(f *testing.F) {
	seeds := []*Message{
		{Type: MsgPing},
		{Type: MsgPutChunk, Array: "alpha", Chunk: []byte("chunk-bytes")},
		{Type: MsgGetChunk, Array: "alpha", Key: array.ChunkKey("0,0")},
		{Type: MsgPatchChunk, Array: "v", Key: array.ChunkKey("1,2"), Hash: 0xDEADBEEF, Chunk: []byte("delta")},
		{Type: MsgOfferBatch, Items: []cluster.WireItem{
			{Array: "alpha", Key: array.ChunkKey("0,0"), Hash: 7, Size: 64},
			{Array: "beta", Key: array.ChunkKey("1,1"), Hash: 9, Size: 128},
		}},
		{Type: MsgPutBatch, Items: []cluster.WireItem{
			{Array: "alpha", Key: array.ChunkKey("0,0"), Data: []byte("payload")},
		}},
		{Type: MsgBoolList, Flags: []bool{true, false, true}},
		{Type: MsgErr, Err: "boom"},
	}
	for _, m := range seeds {
		f.Add(frameBytes(f, m, 0))
	}
	// A genuinely compressed frame: a long repetitive payload beats the
	// deflate overhead, so the compressed branch is in the seed corpus.
	long := &Message{Type: MsgPutChunk, Array: "alpha", Chunk: []byte(strings.Repeat("abcdabcd", 200))}
	compressed := frameBytes(f, long, 1)
	if compressed[4]&flagCompressed == 0 {
		f.Fatal("seed frame did not compress")
	}
	f.Add(compressed)
	// Corrupt variants: flipped type byte, truncated body, mangled deflate.
	badType := append([]byte(nil), compressed...)
	badType[4] ^= 0x13
	f.Add(badType)
	f.Add(compressed[:len(compressed)-3])
	badDeflate := append([]byte(nil), compressed...)
	badDeflate[len(badDeflate)/2] ^= 0xFF
	f.Add(badDeflate)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, raw, wire, err := ReadMessageOpt(bytes.NewReader(data))
		if err != nil {
			return
		}
		if wire > len(data) || raw < 1 {
			t.Fatalf("implausible sizes: raw %d, wire %d from %d input bytes", raw, wire, len(data))
		}
		// Round trip: whatever decoded must re-encode and decode to an
		// identical message, with and without compression.
		for _, cm := range []int{0, 1} {
			var buf bytes.Buffer
			if _, _, err := WriteMessageOpt(&buf, m, cm); err != nil {
				t.Fatalf("re-encode (compressMin=%d): %v", cm, err)
			}
			m2, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("re-decode (compressMin=%d): %v", cm, err)
			}
			if !equalMessages(m, m2) {
				t.Fatalf("round trip mismatch (compressMin=%d):\n in: %+v\nout: %+v", cm, m, m2)
			}
		}
	})
}
