package transport

import (
	"net"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/storage"
)

func testSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "i", Start: 0, End: 9, ChunkSize: 5},
			{Name: "j", Start: 0, End: 9, ChunkSize: 5},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
}

func testChunk(t *testing.T, pts ...array.Point) *array.Chunk {
	t.Helper()
	a := array.New(testSchema())
	for i, p := range pts {
		if err := a.Set(p, array.Tuple{float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var ch *array.Chunk
	a.EachChunk(func(c *array.Chunk) bool { ch = c; return false })
	if ch == nil {
		t.Fatal("no chunk")
	}
	return ch
}

func startServer(t *testing.T) (*NodeServer, *Client) {
	t.Helper()
	srv := NewNodeServer(storage.NewStore(), nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := NewClient(srv.Addr(), DefaultClientConfig())
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestServerChunkOps(t *testing.T) {
	srv, c := startServer(t)
	ch := testChunk(t, array.Point{1, 1}, array.Point{2, 3})

	// Put, Has, Get.
	if _, err := c.Do(&Message{Type: MsgPutChunk, Array: "A", Chunk: array.EncodeChunk(ch)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(&Message{Type: MsgHasChunk, Array: "A", Key: ch.Key()})
	if err != nil || !resp.Flag {
		t.Fatalf("Has = %v, %v; want true", resp, err)
	}
	resp, err = c.Do(&Message{Type: MsgGetChunk, Array: "A", Key: ch.Key()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := array.DecodeChunk(resp.Chunk)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != 2 {
		t.Fatalf("got %d cells, want 2", got.NumCells())
	}

	// Missing chunk is a remote error, not a transport failure.
	_, err = c.Do(&Message{Type: MsgGetChunk, Array: "A", Key: array.ChunkKey("nope")})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Get missing = %v; want RemoteError", err)
	}
	if !strings.Contains(remote.Error(), "not resident") {
		t.Errorf("unexpected remote error: %v", remote)
	}

	// MergeDelta with cell semantics, then Stats / Keys / Delete / Drop.
	more := testChunk(t, array.Point{4, 4})
	if _, err := c.Do(&Message{
		Type: MsgMergeDelta, Array: "A",
		MergeKind: uint8(cluster.MergeCells), Chunk: array.EncodeChunk(more),
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := srv.Store().Get("A", ch.Key())
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumCells() != 3 {
		t.Fatalf("after merge: %d cells, want 3", merged.NumCells())
	}
	resp, err = c.Do(&Message{Type: MsgStats})
	if err != nil || resp.NumChunks != 1 || resp.Bytes <= 0 {
		t.Fatalf("Stats = %+v, %v", resp, err)
	}
	resp, err = c.Do(&Message{Type: MsgKeys, Array: "A"})
	if err != nil || len(resp.KeyList) != 1 || resp.KeyList[0] != ch.Key() {
		t.Fatalf("Keys = %+v, %v", resp, err)
	}
	resp, err = c.Do(&Message{Type: MsgDeleteChunk, Array: "A", Key: ch.Key()})
	if err != nil || !resp.Flag {
		t.Fatalf("Delete = %+v, %v", resp, err)
	}
	if _, err := c.Do(&Message{Type: MsgPutChunk, Array: "A", Chunk: array.EncodeChunk(ch)}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Do(&Message{Type: MsgDropArray, Array: "A"})
	if err != nil || resp.Count != 1 {
		t.Fatalf("DropArray = %+v, %v", resp, err)
	}
}

func TestServerRejectsCorruptChunk(t *testing.T) {
	_, c := startServer(t)
	_, err := c.Do(&Message{Type: MsgPutChunk, Array: "A", Chunk: []byte("not a chunk")})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Put corrupt = %v; want RemoteError", err)
	}
}

func TestServerGracefulClose(t *testing.T) {
	srv, c := startServer(t)
	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Connections are down; a request must fail, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(&Message{Type: MsgPing})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("request to closed server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Error("request to closed server hung")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientRetriesFreshDial(t *testing.T) {
	// A client pointed at a dead port fails after its retries, with the
	// address and message type in the error.
	c := NewClient("127.0.0.1:1", ClientConfig{MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer c.Close()
	_, err := c.Do(&Message{Type: MsgPing})
	if err == nil {
		t.Fatal("Ping to dead port succeeded")
	}
	if !strings.Contains(err.Error(), "Ping") {
		t.Errorf("error lacks message type: %v", err)
	}
}

func TestClientSurvivesServerSideIdleClose(t *testing.T) {
	// Server closes idle connections almost immediately; an idempotent
	// request through the stale pooled connection must transparently retry.
	srv := NewNodeServer(storage.NewStore(), &ServerConfig{IdleTimeout: 50 * time.Millisecond})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr(), DefaultClientConfig())
	defer c.Close()
	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the server drop the pooled conn
	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatalf("request after idle close: %v", err)
	}
}

// A peer that stops reading (full TCP window mid-response) must not pin a
// draining server: the grace deadline applies to blocked writes too, so
// Drain returns even when the per-response write deadline is disabled.
func TestDrainUnblocksStuckWrite(t *testing.T) {
	store := storage.NewStore()
	// A multi-megabyte chunk so one response overflows the socket buffers.
	schema := array.MustSchema("B",
		[]array.Dimension{{Name: "i", Start: 0, End: 1 << 20, ChunkSize: 1 << 20}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	big := array.New(schema)
	for i := 0; i < 1<<18; i++ {
		if err := big.Set(array.Point{int64(i)}, array.Tuple{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var ch *array.Chunk
	big.EachChunk(func(c *array.Chunk) bool { ch = c; return false })
	if err := store.Put("B", ch); err != nil {
		t.Fatal(err)
	}
	srv := NewNodeServer(store, &ServerConfig{WriteTimeout: -1})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10) // tiny receive window: stop ACKing early
	}
	// Pipeline requests and never read a byte of any response: the server's
	// response writes fill the socket buffers and block.
	for i := 0; i < 8; i++ {
		if _, _, err := WriteMessageOpt(conn, &Message{Type: MsgGetChunk, Array: "B", Key: ch.Key()}, 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let a response write block

	done := make(chan struct{})
	go func() {
		srv.Drain(200 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned while a response write was blocked")
	}
}
