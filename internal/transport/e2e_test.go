package transport_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/view"
)

func e2eSchema() *array.Schema {
	return array.MustSchema("cat",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 59, ChunkSize: 10},
			{Name: "y", Start: 0, End: 59, ChunkSize: 10},
		},
		[]array.Attribute{{Name: "flux", Type: array.Float64}})
}

// e2eData builds a seeded base array and a disjoint insert batch.
func e2eData(t *testing.T) (base, batch *array.Array) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s := e2eSchema()
	base, batch = array.New(s), array.New(s)
	seen := make(map[[2]int64]bool)
	place := func(a *array.Array, n int) {
		for placed := 0; placed < n; {
			p := array.Point{rng.Int63n(60), rng.Int63n(60)}
			k := [2]int64{p[0], p[1]}
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := a.Set(p, array.Tuple{float64(rng.Intn(100)) / 10}); err != nil {
				t.Fatal(err)
			}
			placed++
		}
	}
	place(base, 300)
	place(batch, 90)
	return base, batch
}

func e2eDef(t *testing.T) *view.Definition {
	t.Helper()
	s := e2eSchema()
	def, err := view.NewDefinition("nbr", s, s,
		simjoin.NewPred(shape.L1(2, 2), nil),
		[]string{"x", "y"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}, {Kind: view.Sum, Attr: "flux", As: "tot"}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// runSequence loads the base, builds the view, and applies the batch on
// the given cluster, returning the final view content and the reports.
func runSequence(t *testing.T, cl *cluster.Cluster, strategy string, batches []*array.Array) (*array.Array, []*maintain.Report) {
	t.Helper()
	base, _ := e2eData(t)
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := e2eDef(t)
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := maintain.NewMaintainer(cl, def, maintain.Strategies()[strategy], maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var reports []*maintain.Report
	for i, b := range batches {
		rep, err := m.ApplyBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		reports = append(reports, rep)
	}
	content, err := cl.Gather(def.Name)
	if err != nil {
		t.Fatal(err)
	}
	return content, reports
}

func statesEqual(a, b *array.Array) bool {
	equal := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			other, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if math.Abs(v) > 1e-9 {
						equal = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if math.Abs(other[i]-tup[i]) > 1e-9 {
					equal = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	check(b, a)
	return equal
}

// TestEndToEndTCPFabric is the acceptance test of the transport subsystem:
// three node daemons on loopback, a view materialized over them, an insert
// batch maintained through the TCPFabric, and the result checked against
// both the in-process LocalFabric run and a from-scratch recomputation.
func TestEndToEndTCPFabric(t *testing.T) {
	const nodes = 3
	for _, strategy := range []string{"baseline", "differential", "reassign"} {
		t.Run(strategy, func(t *testing.T) {
			_, batch := e2eData(t)

			lc, err := transport.StartLoopback(nodes, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer lc.Close()
			fab, err := lc.Fabric(transport.DefaultClientConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			tcpCl, err := cluster.New(nodes, cluster.WithWorkersPerNode(2), cluster.WithFabric(fab))
			if err != nil {
				t.Fatal(err)
			}
			tcpView, tcpReports := runSequence(t, tcpCl, strategy, []*array.Array{batch})

			localCl, err := cluster.New(nodes, cluster.WithWorkersPerNode(2))
			if err != nil {
				t.Fatal(err)
			}
			localView, localReports := runSequence(t, localCl, strategy, []*array.Array{batch})

			// The maintained view must agree across fabrics...
			if !statesEqual(tcpView, localView) {
				t.Error("TCP-fabric view diverges from LocalFabric view")
			}
			// ...and with a from-scratch recomputation.
			base, err := tcpCl.Gather("cat")
			if err != nil {
				t.Fatal(err)
			}
			want, err := view.Materialize(e2eDef(t), base, base)
			if err != nil {
				t.Fatal(err)
			}
			if !statesEqual(tcpView, want) {
				t.Error("TCP-fabric view diverges from recomputation")
			}

			// The ledger is computed from the plan, not the fabric: predicted
			// cost must be identical bit for bit across fabrics.
			for i := range tcpReports {
				if tcpReports[i].MaintenanceSeconds != localReports[i].MaintenanceSeconds {
					t.Errorf("batch %d: predicted cost differs across fabrics: %v vs %v",
						i, tcpReports[i].MaintenanceSeconds, localReports[i].MaintenanceSeconds)
				}
				if tcpReports[i].ExecSeconds <= 0 {
					t.Errorf("batch %d: no measured execution time", i)
				}
			}

			// Chunks really live on the remote stores, not in-process.
			total := 0
			for _, srv := range lc.Servers {
				total += srv.Store().NumChunks()
			}
			if total == 0 {
				t.Error("no chunks resident on the node daemons")
			}
		})
	}
}

// TestEndToEndTCPDeletion drives the retraction path (MergeErase over the
// wire) through the TCP fabric.
func TestEndToEndTCPDeletion(t *testing.T) {
	const nodes = 3
	lc, err := transport.StartLoopback(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fab, err := lc.Fabric(transport.DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	cl, err := cluster.New(nodes, cluster.WithWorkersPerNode(2), cluster.WithFabric(fab))
	if err != nil {
		t.Fatal(err)
	}

	base, _ := e2eData(t)
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := e2eDef(t)
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := maintain.NewMaintainer(cl, def, maintain.Strategies()["reassign"], maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Retract a slab of the base.
	del := array.New(e2eSchema())
	n := 0
	base.EachCell(func(p array.Point, tup array.Tuple) bool {
		if p[0] < 10 {
			if err := del.Set(p, tup); err != nil {
				t.Fatal(err)
			}
			n++
		}
		return true
	})
	if n == 0 {
		t.Fatal("nothing to delete")
	}
	if _, err := m.ApplyDelete(del); err != nil {
		t.Fatal(err)
	}

	got, err := cl.Gather(def.Name)
	if err != nil {
		t.Fatal(err)
	}
	newBase, err := cl.Gather("cat")
	if err != nil {
		t.Fatal(err)
	}
	if newBase.NumCells() != base.NumCells()-n {
		t.Fatalf("base has %d cells after deleting %d of %d", newBase.NumCells(), n, base.NumCells())
	}
	want, err := view.Materialize(def, newBase, newBase)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got, want) {
		t.Error("view after TCP-fabric deletion diverges from recomputation")
	}
}
