package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestDoCtxPreCancelled: a context cancelled before the call makes no
// attempt at all — no dial, no frame, no retry.
func TestDoCtxPreCancelled(t *testing.T) {
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(good)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := c.DoCtx(ctx, &Message{Type: MsgPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Dials != 0 || st.Requests["Ping"] != 0 || st.Retries != 0 {
		t.Fatalf("Dials=%d Requests=%d Retries=%d, want all 0", st.Dials, st.Requests["Ping"], st.Retries)
	}
}

// cancelOnWriteConn cancels the request's context and then fails the
// write, simulating a caller that gives up while the attempt is in flight.
type cancelOnWriteConn struct {
	*scriptConn
	cancel context.CancelFunc
}

func (c *cancelOnWriteConn) Write(p []byte) (int, error) {
	c.cancel()
	return 0, errors.New("injected write failure after cancel")
}

// TestDoCtxCancelledAttemptNotRetried: an attempt that fails after the
// context is cancelled must not be retried — even for an idempotent
// request that would normally replay — and the error must say
// "cancelled", not "node down".
func TestDoCtxCancelledAttemptNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bad := &cancelOnWriteConn{scriptConn: &scriptConn{}, cancel: cancel}
	spare := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(bad, spare)
	defer c.Close()

	_, err := c.DoCtx(ctx, &Message{Type: MsgPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (cancelled requests must not retry)", st.Retries)
	}
	if spare.written() != 0 {
		t.Fatal("cancelled request was replayed on a second connection")
	}
	if !bad.closed {
		t.Fatal("cancelled attempt's connection was not closed")
	}
}

// TestDoCtxCancellationInterruptsBlockedRead: cancelling mid-request wakes
// an attempt blocked on a response that never comes, and the half-used
// connection is closed, not pooled — a later request must not inherit a
// poisoned deadline or a stray response frame.
func TestDoCtxCancellationInterruptsBlockedRead(t *testing.T) {
	cli, srv := net.Pipe()
	go func() {
		// Swallow the request frame, then go silent.
		buf := make([]byte, 1<<16)
		for {
			if _, err := srv.Read(buf); err != nil {
				return
			}
		}
	}()
	defer srv.Close()
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(cli, good)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.DoCtx(ctx, &Message{Type: MsgPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to interrupt the blocked read", elapsed)
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}
	c.mu.Lock()
	pooled := len(c.idle)
	c.mu.Unlock()
	if pooled != 0 {
		t.Fatal("connection of a cancelled request was returned to the pool")
	}
	// The client must still be healthy for the next request.
	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatalf("Do(Ping) after a cancelled request: %v", err)
	}
}

// TestDoCtxDeadlineTightensAttempt: a context deadline shorter than the
// configured request timeout bounds the attempt.
func TestDoCtxDeadlineTightensAttempt(t *testing.T) {
	cli, srv := net.Pipe()
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := srv.Read(buf); err != nil {
				return
			}
		}
	}()
	defer srv.Close()
	c := scriptedClient(cli)
	defer c.Close()
	c.cfg.Timeout = time.Hour // context must win

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.DoCtx(ctx, &Message{Type: MsgPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("attempt outlived the context deadline by far: %v", elapsed)
	}
}

// TestDoCtxCancelDuringBackoff: cancellation during a retry backoff sleep
// returns promptly instead of waiting the delay out.
func TestDoCtxCancelDuringBackoff(t *testing.T) {
	mk := func() *scriptConn { return &scriptConn{writeErr: errors.New("down")} }
	c := scriptedClient(mk(), mk(), mk())
	defer c.Close()
	c.cfg.RetryBackoff = time.Hour // only cancellation can end the wait

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.DoCtx(ctx, &Message{Type: MsgPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff sleep ignored cancellation for %v", elapsed)
	}
}
