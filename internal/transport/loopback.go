package transport

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/storage"
)

// LoopbackCluster is a set of in-process node daemons on 127.0.0.1
// ephemeral ports — the smallest real-sockets deployment. Every chunk
// still crosses a genuine TCP connection and both serialization
// boundaries; only process isolation is skipped.
type LoopbackCluster struct {
	Servers []*NodeServer
	Addrs   []string
}

// StartLoopback starts n node daemons on loopback ephemeral ports, each
// with a fresh empty store.
func StartLoopback(n int, cfg *ServerConfig) (*LoopbackCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", n)
	}
	lc := &LoopbackCluster{}
	for i := 0; i < n; i++ {
		srv := NewNodeServer(storage.NewStore(), cfg)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			lc.Close()
			return nil, fmt.Errorf("transport: starting loopback node %d: %w", i, err)
		}
		lc.Servers = append(lc.Servers, srv)
		lc.Addrs = append(lc.Addrs, srv.Addr())
	}
	return lc, nil
}

// Fabric connects a TCPFabric to the loopback nodes.
func (lc *LoopbackCluster) Fabric(cfg ClientConfig) (*TCPFabric, error) {
	return NewTCPFabric(lc.Addrs, cfg)
}

// Close shuts every node down.
func (lc *LoopbackCluster) Close() error {
	var first error
	for _, s := range lc.Servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
