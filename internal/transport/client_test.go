package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// scriptConn is a fault-injecting net.Conn: writes can be made to fail,
// reads serve a pre-encoded response frame or a scripted error. It records
// every byte written so tests can assert what actually went on the wire.
type scriptConn struct {
	mu          sync.Mutex
	writeErr    error // returned by Write when set
	readErr     error // returned by Read once the response is drained
	deadlineErr error // returned by SetDeadline when set
	resp        *bytes.Reader
	wrote       bytes.Buffer
	closed      bool
}

// withResponse pre-encodes a response frame for the conn to serve.
func (c *scriptConn) withResponse(t *testing.T, m *Message) *scriptConn {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("encoding scripted response: %v", err)
	}
	c.resp = bytes.NewReader(buf.Bytes())
	return c
}

func (c *scriptConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resp != nil && c.resp.Len() > 0 {
		return c.resp.Read(p)
	}
	if c.readErr != nil {
		return 0, c.readErr
	}
	return 0, errors.New("scriptConn: no response scripted")
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeErr != nil {
		return 0, c.writeErr
	}
	return c.wrote.Write(p)
}

func (c *scriptConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *scriptConn) written() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.Len()
}

func (c *scriptConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *scriptConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *scriptConn) SetDeadline(t time.Time) error      { return c.deadlineErr }
func (c *scriptConn) SetReadDeadline(t time.Time) error  { return c.deadlineErr }
func (c *scriptConn) SetWriteDeadline(t time.Time) error { return c.deadlineErr }

// scriptedClient builds a client whose dial hook hands out the given conns
// in order; dialing past the end fails.
func scriptedClient(conns ...net.Conn) *Client {
	c := NewClient("scripted", ClientConfig{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}.withDefaults())
	i := 0
	var mu sync.Mutex
	c.dial = func() (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(conns) {
			return nil, errors.New("scriptConn: dial budget exhausted")
		}
		conn := conns[i]
		i++
		return conn, nil
	}
	return c
}

// Regression: a write failure for an idempotent request on a FRESH
// connection used to be classified non-retryable (the old policy only
// retried `reused && idempotent`), so a single dead dial failed the whole
// request even though replaying a Ping is harmless.
func TestWriteFailureFreshConnIdempotentRetried(t *testing.T) {
	bad := &scriptConn{writeErr: errors.New("injected write failure")}
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(bad, good)
	defer c.Close()

	resp, err := c.Do(&Message{Type: MsgPing})
	if err != nil {
		t.Fatalf("Do(Ping) after fresh-conn write failure: %v", err)
	}
	if resp.Type != MsgOK {
		t.Fatalf("resp.Type = %v, want OK", resp.Type)
	}
	st := c.Stats()
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if !bad.closed {
		t.Fatal("failed connection was not closed")
	}
	if st.Requests["Ping"] != 2 {
		t.Fatalf("Requests[Ping] = %d, want 2 (one per attempt)", st.Requests["Ping"])
	}
}

// A write failure on a REUSED (pooled) connection retries as before.
func TestWriteFailureReusedConnRetried(t *testing.T) {
	stale := &scriptConn{writeErr: errors.New("stale pooled conn")}
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(good)
	defer c.Close()
	c.idle = append(c.idle, stale) // plant the stale conn in the pool

	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatalf("Do(Ping) after pooled-conn write failure: %v", err)
	}
	st := c.Stats()
	if st.PoolHits != 1 || st.Retries != 1 {
		t.Fatalf("PoolHits=%d Retries=%d, want 1 and 1", st.PoolHits, st.Retries)
	}
}

// A lost response (write succeeded, read failed) retries when the request
// is idempotent.
func TestLostResponseIdempotentRetried(t *testing.T) {
	mute := &scriptConn{readErr: errors.New("injected read failure")}
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgBool, Flag: true})
	c := scriptedClient(mute, good)
	defer c.Close()

	resp, err := c.Do(&Message{Type: MsgHasChunk, Array: "A", Key: "0|0"})
	if err != nil {
		t.Fatalf("Do(HasChunk) after lost response: %v", err)
	}
	if resp.Type != MsgBool || !resp.Flag {
		t.Fatalf("resp = %+v, want Bool/true", resp)
	}
	if got := c.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
	if mute.written() == 0 {
		t.Fatal("first attempt should have written the frame")
	}
}

// MergeDelta is NOT idempotent: once the frame may have been written, a
// lost response must surface as an error with no replay — the server may
// have applied the merge, and folding it twice corrupts the view.
func TestLostResponseMergeDeltaNotRetried(t *testing.T) {
	mute := &scriptConn{readErr: errors.New("injected read failure")}
	spare := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(mute, spare)
	defer c.Close()

	req := &Message{Type: MsgMergeDelta, Array: "V", Chunk: []byte{1, 2, 3}}
	if _, err := c.Do(req); err == nil {
		t.Fatal("Do(MergeDelta) with lost response must fail, not retry")
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}
	if st.Requests["MergeDelta"] != 1 {
		t.Fatalf("Requests[MergeDelta] = %d, want exactly 1 attempt", st.Requests["MergeDelta"])
	}
	if spare.written() != 0 {
		t.Fatal("MergeDelta was replayed on a second connection")
	}
}

// A MergeDelta write failure is also terminal: bytes may have reached the
// server's receive buffer even if Write reported an error.
func TestWriteFailureMergeDeltaNotRetried(t *testing.T) {
	bad := &scriptConn{writeErr: errors.New("injected write failure")}
	spare := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(bad, spare)
	defer c.Close()

	if _, err := c.Do(&Message{Type: MsgMergeDelta, Array: "V"}); err == nil {
		t.Fatal("Do(MergeDelta) with write failure must fail, not retry")
	}
	if spare.written() != 0 {
		t.Fatal("MergeDelta was replayed after a write failure")
	}
}

// Dial failures retry regardless of request type: nothing was sent.
func TestDialFailureRetried(t *testing.T) {
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(good)
	defer c.Close()
	inner := c.dial
	calls := 0
	c.dial = func() (net.Conn, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("injected dial failure")
		}
		return inner()
	}

	if _, err := c.Do(&Message{Type: MsgMergeDelta, Array: "V"}); err != nil {
		t.Fatalf("Do(MergeDelta) after dial failure: %v", err)
	}
	if got := c.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

// A SetDeadline failure before the write is retryable (nothing sent) and
// must not be ignored: the connection is condemned.
func TestSetDeadlineFailureRetried(t *testing.T) {
	bad := &scriptConn{deadlineErr: errors.New("injected deadline failure")}
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(bad, good)
	defer c.Close()

	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatalf("Do(Ping) after SetDeadline failure: %v", err)
	}
	if !bad.closed {
		t.Fatal("connection with failing SetDeadline was not closed")
	}
	if bad.written() != 0 {
		t.Fatal("no frame should be written after SetDeadline fails")
	}
}

// A RemoteError is an application failure: the server executed the request,
// so it is never retried — not even for idempotent types.
func TestRemoteErrorNotRetried(t *testing.T) {
	errConn := (&scriptConn{}).withResponse(t, &Message{Type: MsgErr, Err: "no such chunk"})
	spare := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(errConn, spare)
	defer c.Close()

	_, err := c.Do(&Message{Type: MsgGetChunk, Array: "A", Key: "0|0"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	st := c.Stats()
	if st.Retries != 0 || st.RemoteErrors != 1 {
		t.Fatalf("Retries=%d RemoteErrors=%d, want 0 and 1", st.Retries, st.RemoteErrors)
	}
}

// Retries stop at MaxRetries even for idempotent requests.
func TestRetriesExhausted(t *testing.T) {
	mk := func() *scriptConn { return &scriptConn{writeErr: errors.New("down")} }
	c := scriptedClient(mk(), mk(), mk(), mk())
	defer c.Close()

	if _, err := c.Do(&Message{Type: MsgPing}); err == nil {
		t.Fatal("Do must fail once retries are exhausted")
	}
	st := c.Stats()
	if st.Retries != int64(c.cfg.MaxRetries) {
		t.Fatalf("Retries = %d, want %d", st.Retries, c.cfg.MaxRetries)
	}
	if st.Requests["Ping"] != int64(c.cfg.MaxRetries)+1 {
		t.Fatalf("Requests[Ping] = %d, want %d", st.Requests["Ping"], c.cfg.MaxRetries+1)
	}
}

// jitteredBackoff draws uniformly in [d/2, d].
func TestJitteredBackoffBounds(t *testing.T) {
	d := 20 * time.Millisecond
	lo, hi := d, time.Duration(0)
	for i := 0; i < 500; i++ {
		got := jitteredBackoff(d)
		if got < d/2 || got > d {
			t.Fatalf("jitteredBackoff(%v) = %v, outside [%v, %v]", d, got, d/2, d)
		}
		if got < lo {
			lo = got
		}
		if got > hi {
			hi = got
		}
	}
	// With 500 draws the spread should cover a good part of the range; a
	// constant result would mean the jitter is broken.
	if lo == hi {
		t.Fatalf("jitteredBackoff is constant at %v", lo)
	}
	if jitteredBackoff(0) != 0 || jitteredBackoff(1) != 1 {
		t.Fatal("degenerate durations must pass through")
	}
}

// Wire counters reflect what actually moved: bytes/frames on success, per
// attempt request counts, pool accounting.
func TestClientStatsCounters(t *testing.T) {
	good := (&scriptConn{}).withResponse(t, &Message{Type: MsgOK})
	c := scriptedClient(good)
	defer c.Close()

	if _, err := c.Do(&Message{Type: MsgPing}); err != nil {
		t.Fatalf("Do(Ping): %v", err)
	}
	st := c.Stats()
	if st.FramesOut != 1 || st.FramesIn != 1 {
		t.Fatalf("FramesOut=%d FramesIn=%d, want 1 and 1", st.FramesOut, st.FramesIn)
	}
	if st.Dials != 1 || st.PoolMisses != 1 {
		t.Fatalf("Dials=%d PoolMisses=%d, want 1 and 1", st.Dials, st.PoolMisses)
	}
	// scriptConn is not wrapped by countingConn only when planted in the
	// pool; dialed conns are wrapped, so byte counters must have moved.
	if st.BytesOut == 0 || st.BytesIn == 0 {
		t.Fatalf("BytesOut=%d BytesIn=%d, want both > 0", st.BytesOut, st.BytesIn)
	}
}
