package transport

import (
	"reflect"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

func defRoundTrip(t *testing.T, d *view.Definition) *view.Definition {
	t.Helper()
	buf, err := EncodeDefinition(d)
	if err != nil {
		t.Fatalf("encode %s: %v", d.Name, err)
	}
	got, err := DecodeDefinition(buf)
	if err != nil {
		t.Fatalf("decode %s: %v", d.Name, err)
	}
	if got.String() != d.String() {
		t.Errorf("round trip changed the definition:\n in: %s\nout: %s", d, got)
	}
	if !reflect.DeepEqual(got.Schema(), d.Schema()) {
		t.Errorf("round trip changed the view schema:\n in: %+v\nout: %+v", d.Schema(), got.Schema())
	}
	return got
}

func TestViewSpecRoundTripSelfJoin(t *testing.T) {
	s := testSchema()
	d, err := view.NewDefinition("V", s, s,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}, {Kind: view.Avg, Attr: "v", As: "avg"}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetFilters([]view.Condition{{Attr: "v", Op: view.Lt, Value: 19}}, nil); err != nil {
		t.Fatal(err)
	}
	got := defRoundTrip(t, d)
	if !got.SelfJoin() {
		t.Error("round trip lost the self-join property")
	}
	fa, fb := got.Filters()
	if len(fa) != 1 || fa[0].Attr != "v" || fb != nil {
		t.Errorf("round trip changed filters: %v / %v", fa, fb)
	}
	if got.AlphaMatch(array.Tuple{25}) {
		t.Error("rebuilt α filter admits a tuple the original rejects")
	}
}

func TestViewSpecRoundTripMappingsAndShapes(t *testing.T) {
	alpha := testSchema()
	beta := array.MustSchema("B",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 9, ChunkSize: 5},
			{Name: "y", Start: 0, End: 9, ChunkSize: 5},
		},
		[]array.Attribute{{Name: "w", Type: array.Float64}})

	custom, err := shape.FromOffsets("diag", [][]int64{{0, 0}, {1, 1}, {-1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		pred  simjoin.Pred
		agg   view.Aggregate
		chunk []int64
	}{
		{"translate-l2", simjoin.NewPred(shape.L2(2, 2), simjoin.Translate{Offset: []int64{1, -1}}), view.Aggregate{Kind: view.Sum, Attr: "w", As: "s"}, nil},
		{"regrid-linf", simjoin.NewPred(shape.Linf(2, 1), simjoin.Regrid{Factor: []int64{2, 2}}), view.Aggregate{Kind: view.Min, Attr: "w", As: "lo"}, []int64{2, 2}},
		{"offsets", simjoin.NewPred(custom, nil), view.Aggregate{Kind: view.Max, Attr: "w", As: "hi"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := view.NewDefinition("V_"+tc.name, alpha, beta, tc.pred,
				[]string{"i", "j"}, []view.Aggregate{tc.agg}, tc.chunk)
			if err != nil {
				t.Fatal(err)
			}
			got := defRoundTrip(t, d)
			// The rebuilt shape must agree with the original pointwise.
			for _, off := range [][]int64{{0, 0}, {1, 1}, {2, 0}, {-1, -1}, {2, 2}, {-2, 1}} {
				if got.Pred.Shape.Contains(off) != d.Pred.Shape.Contains(off) {
					t.Errorf("rebuilt shape disagrees at %v", off)
				}
			}
		})
	}
}

func TestViewSpecRoundTripEmbeddedWindowShape(t *testing.T) {
	// The PTF-5 pattern: a spatial L1 ball embedded in 3D with a long time
	// window — enumeration-hostile, serializable only via provenance.
	s := array.MustSchema("ptf",
		[]array.Dimension{
			{Name: "t", Start: 0, End: 9999, ChunkSize: 100},
			{Name: "ra", Start: 0, End: 99, ChunkSize: 10},
			{Name: "dec", Start: 0, End: 99, ChunkSize: 10},
		},
		[]array.Attribute{{Name: "flux", Type: array.Float64}})
	sh, err := shape.Embed(shape.L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-2000, 0}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := view.NewDefinition("assoc", s, s, simjoin.NewPred(sh, nil),
		[]string{"t", "ra", "dec"}, []view.Aggregate{{Kind: view.Count, As: "n"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := defRoundTrip(t, d)
	for _, off := range [][]int64{{0, 0, 0}, {-1999, 1, 0}, {-2001, 0, 0}, {0, 1, 1}, {5, 0, 0}} {
		if got.Pred.Shape.Contains(off) != d.Pred.Shape.Contains(off) {
			t.Errorf("rebuilt embedded shape disagrees at %v", off)
		}
	}
}

func TestEncodeDefinitionRejectsOpaqueShape(t *testing.T) {
	// A hand-built shape with a huge box and no provenance cannot travel.
	big := shape.MustNew("opaque", []int64{-100000, -100000}, []int64{100000, 100000},
		func(off []int64) bool { return off[0] == off[1] })
	s := testSchema()
	d, err := view.NewDefinition("V", s, s, simjoin.NewPred(big, nil),
		[]string{"i", "j"}, []view.Aggregate{{Kind: view.Count, As: "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeDefinition(d); err == nil {
		t.Error("encoding a view with an opaque giant shape must fail")
	}
}
