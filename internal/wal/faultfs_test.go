package wal

import (
	"bytes"
	"errors"
	"testing"
)

func write(t *testing.T, fs *FaultFS, name, data string, sync bool) File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFaultFSCrashDurability(t *testing.T) {
	fs := NewFaultFS(FaultPlan{Seed: 3})
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	synced := write(t, fs, "d/synced", "hello world", true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Entry durable, but these bytes were never fsynced — only a torn
	// prefix of them may survive.
	if _, err := synced.Write([]byte("; torn tail")); err != nil {
		t.Fatal(err)
	}
	// Created after the directory sync: the entries themselves are not
	// durable, so both vanish — even the one with fsynced contents.
	write(t, fs, "d/unsynced-entry", "gone", false)
	write(t, fs, "d/after-dirsync", "entry never synced", true)

	fs.Crash()

	got, err := fs.ReadFile("d/synced")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello world")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("hello world; torn tail") {
		t.Fatalf("crash grew the file: %q", got)
	}
	for _, name := range []string{"d/unsynced-entry", "d/after-dirsync"} {
		if _, err := fs.ReadFile(name); !errors.Is(err, errNotExist) {
			t.Fatalf("%s should have vanished, got err %v", name, err)
		}
	}
}

// Rename is old-or-new, never neither: before the parent directory syncs,
// a crash reverts to the durable entry the rename displaced.
func TestFaultFSRenameCrashRevert(t *testing.T) {
	fs := NewFaultFS(FaultPlan{Seed: 9})
	write(t, fs, "CURRENT", "gen-1", true)
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	write(t, fs, "CURRENT.tmp", "gen-2", true)
	if err := fs.Rename("CURRENT.tmp", "CURRENT"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := fs.ReadFile("CURRENT")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "gen-1" {
		t.Fatalf("unsynced rename should revert to gen-1, got %q", got)
	}

	// Same flip with the directory synced sticks.
	write(t, fs, "CURRENT.tmp", "gen-2", true)
	if err := fs.Rename("CURRENT.tmp", "CURRENT"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got, _ := fs.ReadFile("CURRENT"); string(got) != "gen-2" {
		t.Fatalf("synced rename should stick at gen-2, got %q", got)
	}
	if _, err := fs.ReadFile("CURRENT.tmp"); !errors.Is(err, errNotExist) {
		t.Fatalf("rename source should be gone, got err %v", err)
	}
}

func TestFaultFSInjectedFaults(t *testing.T) {
	// Op 1 is the write below: it persists only a prefix and errors.
	fs := NewFaultFS(FaultPlan{Seed: 5, ShortWriteAtOp: 1})
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || n >= 10 {
		t.Fatalf("want injected short write, got n=%d err=%v", n, err)
	}
	if got, _ := fs.ReadFile("f"); len(got) != n {
		t.Fatalf("file holds %d bytes, write reported %d", len(got), n)
	}

	fs = NewFaultFS(FaultPlan{Seed: 5, FailSyncAtOp: 2})
	f, _ = fs.Create("f")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("fault must fire once, got %v", err)
	}

	fs = NewFaultFS(FaultPlan{Seed: 5, CrashAtOp: 2})
	f, _ = fs.Create("f")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash on op 2, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
	if _, err := fs.ReadFile("f"); !errors.Is(err, ErrCrashed) {
		t.Fatal("all ops must fail until Restart")
	}
	fs.Restart()
	if _, err := fs.ReadFile("f"); !errors.Is(err, errNotExist) {
		t.Fatalf("unsynced-entry file should be gone after crash, got %v", err)
	}
}
