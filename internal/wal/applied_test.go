package wal

import (
	"context"
	"math"
	"testing"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
)

// The applied-batch cursor counts input batches, not barriers: adaptive
// maintenance writes extra barriers (pending-log materializations on query
// touch), and after a crash the cursor — not Seq — is the resume index
// into the input feed.
func TestDurableAppliedCursorCountsBatchesNotBarriers(t *testing.T) {
	data, def := testData(t)
	cfg := maintain.AdaptiveConfig{HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5}

	fs := NewMemFS()
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	am, err := maintain.NewAdaptiveMaintainer(cl, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am.Inner().SetPlacements(testPlacement(), testPlacement())
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	deferred := 0
	for i, b := range data.Batches {
		rep, err := am.ApplyBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		deferred += rep.LightChunks
		if i == len(data.Batches)/2 {
			// Query-driven materialization mid-run: commits extra barriers
			// that must NOT advance the applied cursor.
			if err := am.EnsureFresh(context.Background()); err != nil {
				t.Fatalf("mid-run EnsureFresh: %v", err)
			}
		}
	}
	if deferred == 0 {
		t.Fatal("workload produced no deferred chunks; test is vacuous")
	}
	if got, want := d.Applied(), uint64(len(data.Batches)); got != want {
		t.Fatalf("applied cursor = %d, want %d", got, want)
	}
	if d.Seq() <= d.Applied() {
		t.Fatalf("seq %d should exceed applied %d after materialization barriers", d.Seq(), d.Applied())
	}

	fs.Crash() // kill -9

	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no state recovered")
	}
	if got, want := rec.Applied, uint64(len(data.Batches)); got != want {
		t.Fatalf("recovered applied cursor = %d, want %d", got, want)
	}
	if rec.Seq <= rec.Applied {
		t.Fatalf("recovered seq %d should exceed applied %d", rec.Seq, rec.Applied)
	}
	// Resuming at the cursor means re-applying nothing: recovered state +
	// materialization must already equal the all-eager replay.
	cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Install(cl2); err != nil {
		t.Fatal(err)
	}
	am2, err := maintain.NewAdaptiveMaintainer(cl2, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am2.Inner().SetPlacements(testPlacement(), testPlacement())
	if err := am2.EnsureFresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	wantBase, wantView := cleanReplay(t, data, def, len(data.Batches))
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatal("recovered state at full applied cursor diverges from all-eager replay")
	}
}

// RetireBarrier records a consumed-but-not-committed input batch (a skip):
// the cursor advances without a commit, and the record survives restart.
func TestDurableRetireBarrierRecordsSkippedBatch(t *testing.T) {
	data, def := testData(t)
	fs := NewMemFS()
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	if err := d.CommitBarrier(); err != nil {
		t.Fatal(err)
	}
	if got := d.Applied(); got != 0 {
		t.Fatalf("plain commit advanced the cursor to %d", got)
	}
	if err := d.RetireBarrier(); err != nil {
		t.Fatal(err)
	}
	if got := d.Applied(); got != 1 {
		t.Fatalf("skip barrier left cursor at %d, want 1", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "skip" || rec.Applied != 1 {
		t.Fatalf("recovered barrier %s/applied=%d, want skip/1", rec.Kind, rec.Applied)
	}
}

// Crash anywhere during an adaptive run, then resume the input feed at the
// recovered applied cursor: no committed batch may replay twice and no
// acked batch may be lost — the resumed run must converge to the all-eager
// replay of the full feed. This is the restart path ivmserve takes with
// -adaptive, where barrier Seq and batch index diverge.
func TestDurableAdaptiveResumeFromAppliedCursor(t *testing.T) {
	data, def := testData(t)
	cfg := maintain.AdaptiveConfig{HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5}

	// Fault-free probe sizes the op space.
	probe := NewMemFS()
	d, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	am, err := maintain.NewAdaptiveMaintainer(cl, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am.Inner().SetPlacements(testPlacement(), testPlacement())
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()
	deferred := 0
	for i, b := range data.Batches {
		rep, err := am.ApplyBatch(b)
		if err != nil {
			t.Fatalf("probe batch %d: %v", i, err)
		}
		deferred += rep.LightChunks
	}
	opsTotal := probe.Ops()
	if deferred == 0 {
		t.Fatal("workload produced no deferred chunks; test is vacuous")
	}

	wantBase, wantView := cleanReplay(t, data, def, len(data.Batches))

	const samples = 10
	span := opsTotal - opsAttach
	for s := 0; s < samples; s++ {
		crashAt := opsAttach + 1 + span*int64(s)/samples
		fs := NewFaultFS(FaultPlan{Seed: int64(7000 + s), CrashAtOp: crashAt})
		dc, _, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("crash@%d: open: %v", crashAt, err)
		}
		clc := buildCluster(t, data, def)
		amc, err := maintain.NewAdaptiveMaintainer(clc, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		amc.Inner().SetPlacements(testPlacement(), testPlacement())
		if err := dc.Attach(clc); err != nil {
			t.Fatalf("crash@%d: attach: %v", crashAt, err)
		}
		acked := 0
		for _, b := range data.Batches {
			if _, err := amc.ApplyBatch(b); err != nil {
				break
			}
			acked++
		}
		if !fs.Crashed() {
			fs.Crash() // crash point landed beyond this run's ops
		}
		fs.Restart()

		_, rec, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("crash@%d: recovery open: %v", crashAt, err)
		}
		if rec == nil {
			t.Fatalf("crash@%d: no state recovered", crashAt)
		}
		applied := int(rec.Applied)
		if applied > len(data.Batches) {
			t.Fatalf("crash@%d: cursor %d beyond the %d-batch feed", crashAt, applied, len(data.Batches))
		}
		// An acked batch's retiring barrier was synced before the ack, so
		// the recovered cursor can never trail the acks (a batch that
		// failed *after* its barrier may push it one past).
		if applied < acked {
			t.Fatalf("crash@%d: recovered cursor %d lost acked batches (%d acked)", crashAt, applied, acked)
		}
		cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Install(cl2); err != nil {
			t.Fatalf("crash@%d: install: %v", crashAt, err)
		}
		am2, err := maintain.NewAdaptiveMaintainer(cl2, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		am2.Inner().SetPlacements(testPlacement(), testPlacement())
		for i := applied; i < len(data.Batches); i++ {
			if _, err := am2.ApplyBatch(data.Batches[i]); err != nil {
				t.Fatalf("crash@%d: resumed batch %d: %v", crashAt, i, err)
			}
		}
		if err := am2.EnsureFresh(context.Background()); err != nil {
			t.Fatalf("crash@%d: resumed EnsureFresh: %v", crashAt, err)
		}
		gotBase, gotView := gatherState(t, cl2, def)
		if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
			t.Errorf("crash@%d: resume from cursor %d diverges from all-eager replay (%d acked)", crashAt, applied, acked)
		}
	}
}

// A sync failure anywhere — in particular mid-checkpoint, after the
// journals were already reset to the next generation — must never let a
// later ack outrun recoverable state. Checkpoint failures latch the store
// fail-stop; the acked set and the recovered state must agree exactly at
// every injection point.
func TestDurableCheckpointFailureLatchesFailStop(t *testing.T) {
	data, def := testData(t)

	// Probe with compaction on every barrier: most sync ops land inside
	// checkpoints.
	probe := NewMemFS()
	d, _, err := Open(probe, testNodes, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("probe batch %d: %v", i, err)
		}
	}
	opsTotal := probe.Ops()

	const samples = 10
	span := opsTotal - opsAttach
	latched := 0
	for s := 0; s < samples; s++ {
		failAt := opsAttach + 1 + span*int64(s)/samples
		fs := NewFaultFS(FaultPlan{Seed: int64(8000 + s), FailSyncAtOp: failAt})
		dc, _, err := Open(fs, testNodes, Options{CompactBytes: 1})
		if err != nil {
			t.Fatalf("fail@%d: open: %v", failAt, err)
		}
		clc := buildCluster(t, data, def)
		mc := newMaintainer(t, clc, def)
		if err := dc.Attach(clc); err != nil {
			continue // fault fired inside the attach checkpoint
		}
		var ackedIdx []int
		sawErr := false
		for i, b := range data.Batches {
			if _, err := mc.ApplyBatch(b); err != nil {
				sawErr = true
				continue
			}
			ackedIdx = append(ackedIdx, i)
		}
		if sawErr && dc.CommitBarrier() != nil {
			latched++ // fail-stop: the store refuses further barriers
		}
		fs.Crash()
		fs.Restart()

		_, rec, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("fail@%d: recovery open: %v", failAt, err)
		}
		if rec == nil {
			t.Fatalf("fail@%d: no state recovered", failAt)
		}
		if got, want := rec.Applied, uint64(len(ackedIdx)); got != want {
			t.Errorf("fail@%d: recovered cursor %d, want %d (one per acked batch)", failAt, got, want)
		}
		cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Install(cl2); err != nil {
			t.Fatalf("fail@%d: install: %v", failAt, err)
		}
		// Oracle: clean replay of exactly the acked subset.
		clw := buildCluster(t, data, def)
		mw := newMaintainer(t, clw, def)
		for _, i := range ackedIdx {
			if _, err := mw.ApplyBatch(data.Batches[i]); err != nil {
				t.Fatalf("fail@%d: oracle replay of batch %d: %v", failAt, i, err)
			}
		}
		gotBase, gotView := gatherState(t, cl2, def)
		wantBase, wantView := gatherState(t, clw, def)
		if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
			t.Errorf("fail@%d: recovered state does not match clean replay of the %d acked batches", failAt, len(ackedIdx))
		}
	}
	if latched == 0 {
		t.Error("no sample latched the store fail-stop; sweep missed every checkpoint failure")
	}
}
