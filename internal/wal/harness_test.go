package wal

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/workload"
)

// The durability tests drive a real (small) maintenance workload over a
// FaultFS and compare recovered state against fault-free replays, the same
// oracle the chaos suite uses for the in-memory commit protocol.

const testNodes = 3

func testConfig() workload.PTFConfig {
	cfg := workload.DefaultPTFConfig()
	cfg.Seed = 7
	cfg.RaRange = 600
	cfg.DecRange = 300
	cfg.BaseNights = 1
	cfg.NumBatches = 4
	cfg.DetectionsPerNight = 50
	cfg.Sigma = 40
	cfg.NumFields = 3
	cfg.FieldsPerNight = 2
	return cfg
}

func testPlacement() cluster.Placement {
	return cluster.RangePlacement{Dim: 1, NumChunks: (testConfig().RaRange + 99) / 100}
}

func testData(t *testing.T) (*workload.Dataset, *view.Definition) {
	t.Helper()
	cfg := testConfig()
	data, err := workload.GeneratePTF(cfg, workload.Real)
	if err != nil {
		t.Fatal(err)
	}
	def, err := workload.PTF5View(data.Schema, 2*cfg.NightLen)
	if err != nil {
		t.Fatal(err)
	}
	return data, def
}

// buildCluster loads the base array and materializes the view on a fresh
// default (in-process stores) cluster.
func buildCluster(t *testing.T, data *workload.Dataset, def *view.Definition) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(data.Base, testPlacement()); err != nil {
		t.Fatal(err)
	}
	if err := maintain.BuildView(cl, def, testPlacement()); err != nil {
		t.Fatal(err)
	}
	return cl
}

func newMaintainer(t *testing.T, cl *cluster.Cluster, def *view.Definition) *maintain.Maintainer {
	t.Helper()
	m, err := maintain.NewMaintainer(cl, def, maintain.Strategies()["reassign"], maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m.SetPlacements(testPlacement(), testPlacement())
	return m
}

// cleanReplay applies the first n batches on a fresh fault-free cluster
// and returns the gathered base and view.
func cleanReplay(t *testing.T, data *workload.Dataset, def *view.Definition, n int) (*array.Array, *array.Array) {
	t.Helper()
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	for i := 0; i < n; i++ {
		if _, err := m.ApplyBatch(data.Batches[i]); err != nil {
			t.Fatalf("clean replay of batch %d: %v", i, err)
		}
	}
	return gatherState(t, cl, def)
}

func gatherState(t *testing.T, cl *cluster.Cluster, def *view.Definition) (*array.Array, *array.Array) {
	t.Helper()
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		t.Fatalf("gather %s: %v", def.Alpha.Name, err)
	}
	vw, err := cl.Gather(def.Name)
	if err != nil {
		t.Fatalf("gather %s: %v", def.Name, err)
	}
	return base, vw
}

// arrayPair bundles a gathered base and view.
type arrayPair struct{ base, view *array.Array }

// sameArray reports cell-exact equality.
func sameArray(a, b *array.Array) bool {
	if a.NumCells() != b.NumCells() {
		return false
	}
	same := true
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		got, ok := b.Get(p)
		if !ok || len(got) != len(tup) {
			same = false
			return false
		}
		for i := range tup {
			if got[i] != tup[i] {
				same = false
				return false
			}
		}
		return true
	})
	return same
}
