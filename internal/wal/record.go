package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/arrayview/arrayview/internal/array"
)

// Log files (journals and the meta log) are sequences of framed records:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// A torn tail — incomplete header, implausible length, or CRC mismatch —
// ends the readable prefix; replay truncates there. Segment files carry
// raw ACH1 chunk bodies addressed by (offset, length) from journal
// records and are integrity-checked by content hash instead of a frame.

const recHeaderLen = 8

// maxRecordLen bounds a single framed record; larger claimed lengths are
// treated as torn-tail garbage.
const maxRecordLen = 1 << 30

// appendFrame appends one framed record to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// frames iterates the valid record prefix of a log file, calling fn with
// each payload and the file offset immediately after its frame. Iteration
// stops silently at the first torn/corrupt record (that is the crash
// contract, not an error) or when fn returns false. It returns the offset
// of the end of the last valid record.
func frames(data []byte, fn func(payload []byte, end int64) bool) int64 {
	off := 0
	for {
		if len(data)-off < recHeaderLen {
			return int64(off)
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if n > maxRecordLen || len(data)-off-recHeaderLen < n {
			return int64(off)
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off)
		}
		off += recHeaderLen + n
		if !fn(payload, int64(off)) {
			return int64(off)
		}
	}
}

// Journal record kinds.
const (
	recPut       = 1
	recDelete    = 2
	recDropArray = 3
)

// journalRec is one decoded journal record.
type journalRec struct {
	kind  byte
	array string
	key   array.ChunkKey
	hash  uint64
	off   int64 // segment offset of the chunk body (recPut)
	size  int64 // segment length of the chunk body (recPut)
}

// encodeJournalRec renders a journal record payload.
func encodeJournalRec(r journalRec) []byte {
	buf := make([]byte, 0, 1+4+len(r.array)+4+len(r.key)+24)
	buf = append(buf, r.kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.array)))
	buf = append(buf, r.array...)
	if r.kind != recDropArray {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.key)))
		buf = append(buf, r.key...)
	}
	if r.kind == recPut {
		buf = binary.BigEndian.AppendUint64(buf, r.hash)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.off))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.size))
	}
	return buf
}

// decodeJournalRec parses a journal record payload.
func decodeJournalRec(p []byte) (journalRec, error) {
	var r journalRec
	bad := func() (journalRec, error) { return r, fmt.Errorf("wal: malformed journal record (%d bytes)", len(p)) }
	if len(p) < 5 {
		return bad()
	}
	r.kind = p[0]
	n := int(binary.BigEndian.Uint32(p[1:]))
	p = p[5:]
	if n > len(p) {
		return bad()
	}
	r.array, p = string(p[:n]), p[n:]
	if r.kind == recDropArray {
		return r, nil
	}
	if len(p) < 4 {
		return bad()
	}
	n = int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if n > len(p) {
		return bad()
	}
	r.key, p = array.ChunkKey(p[:n]), p[n:]
	if r.kind == recDelete {
		return r, nil
	}
	if r.kind != recPut || len(p) != 24 {
		return bad()
	}
	r.hash = binary.BigEndian.Uint64(p)
	r.off = int64(binary.BigEndian.Uint64(p[8:]))
	r.size = int64(binary.BigEndian.Uint64(p[16:]))
	return r, nil
}
