package wal

import (
	"reflect"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func TestFramesRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a longer third record \x00 with binary")}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	var got [][]byte
	end := frames(buf, func(p []byte, _ int64) bool {
		got = append(got, append([]byte(nil), p...))
		return true
	})
	if end != int64(len(buf)) {
		t.Fatalf("valid prefix %d, want %d", end, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(got), len(payloads))
	}
	for i := range got {
		if string(got[i]) != string(payloads[i]) {
			t.Fatalf("record %d: %q want %q", i, got[i], payloads[i])
		}
	}
}

// A torn tail — truncated anywhere inside the last frame — silently ends
// the readable prefix at the previous record boundary.
func TestFramesTornTail(t *testing.T) {
	one := appendFrame(nil, []byte("first"))
	two := appendFrame(one, []byte("second"))
	for cut := len(one) + 1; cut < len(two); cut++ {
		var n int
		end := frames(two[:cut], func([]byte, int64) bool { n++; return true })
		if n != 1 || end != int64(len(one)) {
			t.Fatalf("cut at %d: read %d records, prefix %d (want 1, %d)", cut, n, end, len(one))
		}
	}
}

// A flipped bit anywhere in a frame fails its CRC and stops iteration
// there, without surfacing the corrupt payload.
func TestFramesCRCFlip(t *testing.T) {
	one := appendFrame(nil, []byte("first"))
	buf := appendFrame(one, []byte("second"))
	// Every flip lands inside the second frame: the first record must
	// survive untouched and the corrupted one must never surface.
	for bit := 8 * len(one); bit < 8*len(buf); bit++ {
		mut := append([]byte(nil), buf...)
		mut[bit/8] ^= 1 << (bit % 8)
		var got [][]byte
		end := frames(mut, func(p []byte, _ int64) bool {
			got = append(got, append([]byte(nil), p...))
			return true
		})
		if len(got) != 1 || string(got[0]) != "first" || end != int64(len(one)) {
			t.Fatalf("bit %d: read %q, prefix %d (want just %q, %d)", bit, got, end, "first", len(one))
		}
	}
}

func TestJournalRecRoundTrip(t *testing.T) {
	key := array.ChunkKey("\x00\x01\xfekey")
	recs := []journalRec{
		{kind: recPut, array: "A", key: key, hash: 0xdeadbeefcafe, off: 4096, size: 512},
		{kind: recDelete, array: "V#x", key: key},
		{kind: recDropArray, array: "gone"},
	}
	for _, want := range recs {
		got, err := decodeJournalRec(encodeJournalRec(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
	// Truncations of a valid encoding must error, never panic.
	enc := encodeJournalRec(recs[0])
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeJournalRec(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}
