// Package wal is the durable half of the chunk store: append-only segment
// files holding ACH1 chunk encodings, per-node write-ahead journals of
// store mutations, and a coordinator meta log of commit/rollback barriers
// carrying catalog and pending-log snapshots. Recovery replays the
// journals up to the last barrier's consistent cut, so a crash at any
// point restores either the pre-batch or the post-batch state of every
// committed maintenance batch — never a hybrid.
//
// All file traffic goes through the FS interface so the same code runs on
// the real filesystem (OSFS) and on the in-memory FaultFS, which tracks
// exactly which byte prefixes were fsynced and can simulate a kill -9 with
// torn tails, short writes, and fsync failures on a seeded schedule.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem slice the durable store needs. Paths use forward
// slashes and are relative to the FS root.
type FS interface {
	// Create truncates/creates a file for appending.
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the entry names of a directory, sorted. A missing
	// directory is an error.
	ReadDir(name string) ([]string, error)
	Remove(name string) error
	// RemoveAll removes a file or directory tree; missing is not an error.
	RemoveAll(name string) error
	Rename(oldName, newName string) error
	MkdirAll(name string) error
	// SyncDir makes a directory's entries (creates, renames) durable.
	SyncDir(name string) error
}

// File is an append-only file handle.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS implements FS on the real filesystem under a root directory.
type OSFS struct{ Root string }

// NewOSFS returns an FS rooted at dir.
func NewOSFS(dir string) *OSFS { return &OSFS{Root: dir} }

func (o *OSFS) path(name string) string {
	return filepath.Join(o.Root, filepath.FromSlash(name))
}

func (o *OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (o *OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(o.path(name)) }

func (o *OSFS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(o.path(name))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

func (o *OSFS) Remove(name string) error    { return os.Remove(o.path(name)) }
func (o *OSFS) RemoveAll(name string) error { return os.RemoveAll(o.path(name)) }
func (o *OSFS) Rename(oldName, newName string) error {
	return os.Rename(o.path(oldName), o.path(newName))
}
func (o *OSFS) MkdirAll(name string) error { return os.MkdirAll(o.path(name), 0o755) }

func (o *OSFS) SyncDir(name string) error {
	d, err := os.Open(o.path(name))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", name, err)
	}
	return nil
}
