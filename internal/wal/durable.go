package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
)

// Options configures a Durable store.
type Options struct {
	// CompactBytes checkpoints the store into a fresh generation whenever
	// the logs grow past this many bytes since the last checkpoint,
	// bounding both disk usage and recovery replay length. <= 0 uses
	// DefaultCompactBytes; set very large to effectively disable.
	CompactBytes int64
}

// DefaultCompactBytes is the default checkpoint-compaction threshold.
const DefaultCompactBytes int64 = 8 << 20

// Durable is the WAL-backed on-disk half of a cluster's chunk stores. Once
// attached it journals every durable mutation of every worker store and
// writes one meta-log barrier per committed (or rolled-back) maintenance
// batch: fsync segments, fsync journals, then append + fsync a meta record
// holding the per-journal cut offsets and full catalog/pending snapshots.
// That single synced record is the atomic commit point — recovery replays
// each journal exactly to its cut, so a crash anywhere lands on the last
// barrier's state, never between batches.
//
// The coordinator's own store is deliberately not journaled: it only ever
// holds scratch ("#") content — staged deltas and staging namespaces —
// which recovery starts empty, exactly as batch cleanup would have left
// it. Durable coordinator state (catalog, pending log, epoch) rides in
// the meta records instead.
type Durable struct {
	fs       FS
	nodes    int
	opts     Options
	counters obs.DurableCounters

	mu       sync.Mutex
	cl       *cluster.Cluster
	gen      int64
	journals []*journal
	meta     File
	metaOff  int64
	metaBase int64
	seq      uint64
	applied  uint64
	// failed latches the store fail-stop once its on-disk layout may no
	// longer match what recovery would read — a torn meta append, or any
	// mid-checkpoint failure (journals already reset to the next
	// generation while CURRENT still names the old one). Every subsequent
	// barrier and Sync fails until the store is reopened, so an ack can
	// never outrun recoverable state.
	failed error
}

// Recovered is the state read back from disk by Open: per-node chunk
// encodings, and the catalog/pending/epoch snapshot of the last barrier.
type Recovered struct {
	// Seq and Kind identify the last barrier: Seq commit/rollback
	// barriers were written before the crash (checkpoints do not advance
	// it), Kind is what the last one was.
	Seq  uint64
	Kind string
	// Applied counts the top-level input batches durably consumed before
	// the crash — the resume cursor into the input feed. Unlike Seq it is
	// immune to extra barriers (deferred-delta appends, pending-log
	// materializations, rollback/retry pairs), which carry it forward
	// without advancing it.
	Applied uint64
	// Epoch is the epoch counter to fast-forward to.
	Epoch uint64
	// Nodes maps, per worker node, array name → chunk key → encoding.
	Nodes []map[string]map[array.ChunkKey][]byte

	catalog []catArray
	pending []pendingRec
}

// Open reads (or initializes) the durable store rooted at the FS. When an
// earlier generation exists its state is recovered and returned; the
// caller installs it into a fresh cluster with Recovered.Install, then
// calls Attach. A nil Recovered means a fresh directory.
func Open(fs FS, nodes int, opts Options) (*Durable, *Recovered, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = DefaultCompactBytes
	}
	if err := fs.MkdirAll("."); err != nil {
		return nil, nil, err
	}
	d := &Durable{fs: fs, nodes: nodes, opts: opts}

	cur, err := fs.ReadFile("CURRENT")
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			// Fresh directory: no durable state yet.
			return d, nil, nil
		}
		return nil, nil, err
	}
	var gen int64
	if _, err := fmt.Sscanf(string(cur), "gen-%d", &gen); err != nil || gen <= 0 {
		return nil, nil, fmt.Errorf("wal: malformed CURRENT %q", cur)
	}
	dir := fmt.Sprintf("gen-%d", gen)

	metaData, err := fs.ReadFile(dir + "/meta.wal")
	if err != nil {
		return nil, nil, fmt.Errorf("wal: current generation lost its meta log: %w", err)
	}
	var rec *metaRecord
	frames(metaData, func(payload []byte, _ int64) bool {
		var m metaRecord
		if json.Unmarshal(payload, &m) == nil {
			rec = &m
		}
		return true
	})
	if rec == nil {
		return nil, nil, fmt.Errorf("wal: meta log of %s holds no valid barrier", dir)
	}
	if len(rec.Cuts) != nodes {
		return nil, nil, fmt.Errorf("wal: barrier covers %d nodes, cluster has %d", len(rec.Cuts), nodes)
	}

	r := &Recovered{
		Seq:     rec.Seq,
		Kind:    rec.Kind,
		Applied: rec.Applied,
		Epoch:   rec.Epoch,
		Nodes:   make([]map[string]map[array.ChunkKey][]byte, nodes),
		catalog: rec.Catalog,
		pending: rec.Pending,
	}
	for i := 0; i < nodes; i++ {
		walData, werr := fs.ReadFile(fmt.Sprintf("%s/node-%d.wal", dir, i))
		segData, serr := fs.ReadFile(fmt.Sprintf("%s/node-%d.seg", dir, i))
		if werr != nil || serr != nil {
			if rec.Cuts[i] == 0 {
				r.Nodes[i] = map[string]map[array.ChunkKey][]byte{}
				continue
			}
			return nil, nil, fmt.Errorf("wal: node %d logs missing with nonzero cut %d", i, rec.Cuts[i])
		}
		chunks, err := replayJournal(walData, segData, rec.Cuts[i])
		if err != nil {
			return nil, nil, fmt.Errorf("wal: node %d: %w", i, err)
		}
		r.Nodes[i] = chunks
	}
	d.gen = gen
	d.seq = rec.Seq
	d.applied = rec.Applied
	return d, r, nil
}

// Install loads the recovered state into a freshly built cluster: chunks
// into the worker stores, the catalog and pending-log snapshots, and the
// epoch counter. Call before Attach and before the cluster takes traffic.
//
// The catalog snapshot is the authority on what was committed. A journaled
// body the catalog does not reference is dropped (e.g. a replica ship of a
// pipelined successor batch that raced the barrier), and a catalog replica
// pointer whose body did not make the cut is skipped — replicas are an
// availability optimization, so dropping an un-backed one is always safe.
// Only a missing home body is real corruption and fails recovery.
func (r *Recovered) Install(cl *cluster.Cluster) error {
	if len(r.Nodes) != cl.NumNodes() {
		return fmt.Errorf("wal: recovered %d nodes, cluster has %d", len(r.Nodes), cl.NumNodes())
	}
	for i := range r.Nodes {
		if cl.Node(i).Store == nil {
			return fmt.Errorf("wal: node %d has no local store (durability requires the in-process fabric)", i)
		}
	}
	body := func(node int, name string, key array.ChunkKey) ([]byte, bool) {
		if node < 0 || node >= len(r.Nodes) {
			return nil, false
		}
		enc, ok := r.Nodes[node][name][key]
		return enc, ok
	}
	cat := cl.Catalog()
	for _, ca := range r.catalog {
		if err := cat.Register(ca.Schema); err != nil {
			return fmt.Errorf("wal: restore catalog: %w", err)
		}
		for _, cc := range ca.Chunks {
			k := array.ChunkKey(cc.Key)
			enc, ok := body(cc.Home, ca.Name, k)
			if !ok {
				return fmt.Errorf("wal: home body of %s/%x missing from node %d's recovered journal", ca.Name, cc.Key, cc.Home)
			}
			if err := cl.Node(cc.Home).Store.PutEncoded(ca.Name, k, enc); err != nil {
				return err
			}
			if err := cat.SetChunk(ca.Name, k, cc.Home, cc.Size, cc.Cells); err != nil {
				return err
			}
			for _, rep := range cc.Replicas {
				if rep == cc.Home {
					continue
				}
				enc, ok := body(rep, ca.Name, k)
				if !ok {
					continue // un-backed replica pointer: raced the barrier
				}
				if err := cl.Node(rep).Store.PutEncoded(ca.Name, k, enc); err != nil {
					return err
				}
				if err := cat.AddReplica(ca.Name, k, rep); err != nil {
					return err
				}
			}
			if cc.BBox != nil {
				if err := cat.SetChunkBBox(ca.Name, k, *cc.BBox); err != nil {
					return err
				}
			}
			if cc.Hash != nil {
				if err := cat.SetChunkHash(ca.Name, k, *cc.Hash, cc.EncSize); err != nil {
					return err
				}
			}
		}
	}
	if err := importPending(cl.Catalog(), r.pending); err != nil {
		return err
	}
	cl.Epochs().FastForward(r.Epoch)
	return nil
}

// Counters returns the durability counters for stats surfaces.
func (d *Durable) Counters() *obs.DurableCounters { return &d.counters }

// Seq returns the barrier sequence number (commits + rollbacks so far).
func (d *Durable) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Applied returns the durable applied-input-batch cursor: how many
// top-level batches have been retired by a barrier. Batch consumers
// compare it across an apply to detect batches that terminated without
// retiring (see RetireBarrier).
func (d *Durable) Applied() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

// Attach binds the durable store to the cluster: it checkpoints the
// cluster's current state into a fresh generation (which also compacts
// away the recovered logs), installs a journal on every worker store, and
// registers itself as the cluster's durable sink so the maintenance layer
// issues barriers. Call once, after initial load (or Recovered.Install)
// and before maintenance starts.
func (d *Durable) Attach(cl *cluster.Cluster) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cl != nil {
		return fmt.Errorf("wal: already attached")
	}
	for i := 0; i < cl.NumNodes(); i++ {
		if cl.Node(i).Store == nil {
			return fmt.Errorf("wal: node %d has no local store (durability requires the in-process fabric)", i)
		}
	}
	if cl.NumNodes() != d.nodes {
		return fmt.Errorf("wal: opened for %d nodes, cluster has %d", d.nodes, cl.NumNodes())
	}
	d.cl = cl
	d.journals = make([]*journal, d.nodes)
	for i := range d.journals {
		d.journals[i] = newJournal(i, &d.counters)
	}
	if err := d.checkpointLocked(cl.Epochs().Current()); err != nil {
		d.cl = nil
		return err
	}
	for i := 0; i < d.nodes; i++ {
		cl.Node(i).Store.SetJournal(d.journals[i])
	}
	cl.SetDurable(d)
	return nil
}

// CommitBarrier makes the current cluster state the durable recovery
// point. The maintenance layer calls it after every successful batch
// commit (and after deferring deltas to the pending log).
func (d *Durable) CommitBarrier() error { return d.barrier("commit", false) }

// CommitBarrierRetire is CommitBarrier plus advancing the applied-batch
// cursor: this barrier marks one top-level input batch fully durable.
// The maintenance layer issues it for batches flagged RetireOnCommit and
// the plain CommitBarrier for everything else (pending-log
// materializations, the eager half of a split batch, promotions).
func (d *Durable) CommitBarrierRetire() error { return d.barrier("commit", true) }

// RollbackBarrier records a rollback boundary: same consistent-cut
// mechanics as a commit, marking the restored pre-batch state durable.
// It never advances the applied cursor — a rolled-back batch was not
// consumed.
func (d *Durable) RollbackBarrier() error { return d.barrier("rollback", false) }

// RetireBarrier records that one input batch terminated without a
// retiring commit of its own — it failed and was skipped, or was a no-op
// that wrote no barrier at all. Batch consumers (the serve loop, the
// stream sink) call it when Applied did not advance across a terminal
// batch, keeping the resume cursor aligned with the input sequence.
func (d *Durable) RetireBarrier() error { return d.barrier("skip", true) }

func (d *Durable) barrier(kind string, retire bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cl == nil {
		return &storage.DurabilityError{Op: "sync", Err: fmt.Errorf("wal: barrier before Attach")}
	}
	if d.failed != nil {
		return &storage.DurabilityError{Op: "sync", Err: d.failed}
	}
	cuts := make([]int64, len(d.journals))
	for i, j := range d.journals {
		c, err := j.sync()
		if err != nil {
			return &storage.DurabilityError{Op: "sync", Err: err}
		}
		cuts[i] = c
	}
	applied := d.applied
	if retire {
		applied++
	}
	// Epochs publish right after commit/rollback returns, so the barrier
	// names the epoch about to be published; FastForward is max-based, so
	// overshooting by one on paths that skip the publish is harmless.
	epoch := d.cl.Epochs().Current() + 1
	rec := metaRecord{
		Kind:    kind,
		Seq:     d.seq + 1,
		Applied: applied,
		Epoch:   epoch,
		Cuts:    cuts,
		Catalog: exportCatalog(d.cl.Catalog()),
		Pending: exportPending(d.cl.Catalog()),
	}
	if err := d.appendMetaLocked(rec); err != nil {
		return &storage.DurabilityError{Op: "sync", Err: err}
	}
	d.seq++
	d.applied = applied
	if kind == "commit" {
		d.counters.Commits.Add(1)
	} else {
		d.counters.Rollbacks.Add(1)
	}
	// The barrier's record is already synced above — the commit point is
	// durable in the current generation — so a failed compaction
	// checkpoint must NOT fail the barrier: the caller would roll back
	// in-memory state that recovery resurrects. It latches the store
	// fail-stop instead (see checkpointLocked), failing every subsequent
	// barrier until reopen.
	if d.growthLocked() > d.opts.CompactBytes {
		_ = d.checkpointLocked(epoch)
	}
	return nil
}

// appendMetaLocked frames, writes, and fsyncs one meta record. A torn
// write latches the store fail-stop (partial frame bytes would corrupt
// every later append); a failed fsync does not — the bytes are intact,
// only not yet durable, so the barrier is retryable (mirroring the
// per-node journal convention).
func (d *Durable) appendMetaLocked(rec metaRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := appendFrame(nil, payload)
	n, err := d.meta.Write(buf)
	d.metaOff += int64(n)
	if err != nil {
		d.failed = fmt.Errorf("wal: meta log torn at %d: %w", d.metaOff, err)
		return d.failed
	}
	if err := d.meta.Sync(); err != nil {
		return fmt.Errorf("wal: meta fsync: %w", err)
	}
	d.counters.WALBytes.Add(int64(len(buf)))
	d.counters.Syncs.Add(1)
	return nil
}

// growthLocked returns log bytes accumulated since the last checkpoint.
func (d *Durable) growthLocked() int64 {
	total := d.metaOff - d.metaBase
	for _, j := range d.journals {
		total += j.growth()
	}
	return total
}

// checkpointLocked writes a new generation and latches the store
// fail-stop if anything goes wrong partway: the journals are reset to the
// new generation's files early, so a later failure (Create, SyncDir, the
// CURRENT flip, the base barrier) leaves them pointing at gen-N+1 while
// CURRENT still names gen-N — a subsequent barrier would then ack cuts
// recovery can never read. A crash instead of an error is fine at every
// step (recovery uses the old generation until the CURRENT rename is
// synced); it is only *continuing in-process* that must be fenced.
// Reopening recovers from the still-valid old generation.
func (d *Durable) checkpointLocked(epoch uint64) error {
	if err := d.writeCheckpointLocked(epoch); err != nil {
		if d.failed == nil {
			d.failed = fmt.Errorf("wal: checkpoint failed midway: %w", err)
		}
		return err
	}
	return nil
}

// writeCheckpointLocked writes the cluster's full current state into a
// fresh generation and flips CURRENT to it: per-node segments/journals
// rebuilt from the live stores (content-hash dedup intact), a meta log
// opened with one base barrier, tmp+rename+dirsync for the manifest flip,
// and the old generation removed. Crash-safe at every step — until the
// CURRENT rename is synced, recovery still uses the previous generation,
// and a stray half-written generation is cleared on the next attempt.
func (d *Durable) writeCheckpointLocked(epoch uint64) error {
	newGen := d.gen + 1
	dir := fmt.Sprintf("gen-%d", newGen)
	_ = d.fs.RemoveAll(dir) // stray from an earlier crashed checkpoint
	if err := d.fs.MkdirAll(dir); err != nil {
		return err
	}
	cuts := make([]int64, d.nodes)
	for i, j := range d.journals {
		seg, err := d.fs.Create(fmt.Sprintf("%s/node-%d.seg", dir, i))
		if err != nil {
			return err
		}
		walf, err := d.fs.Create(fmt.Sprintf("%s/node-%d.wal", dir, i))
		if err != nil {
			return err
		}
		if err := j.reset(seg, walf); err != nil {
			return err
		}
		err = d.cl.Node(i).Store.EachEncoded(func(arrayName string, key array.ChunkKey, enc []byte, hash uint64) error {
			return j.JournalPut(arrayName, key, enc, hash)
		})
		if err != nil {
			return err
		}
		if cuts[i], err = j.sync(); err != nil {
			return err
		}
		j.markBase()
	}
	meta, err := d.fs.Create(dir + "/meta.wal")
	if err != nil {
		return err
	}
	oldMeta, oldOff, oldBase := d.meta, d.metaOff, d.metaBase
	d.meta, d.metaOff, d.metaBase = meta, 0, 0
	rec := metaRecord{
		Kind:    "checkpoint",
		Seq:     d.seq,
		Applied: d.applied,
		Epoch:   epoch,
		Cuts:    cuts,
		Catalog: exportCatalog(d.cl.Catalog()),
		Pending: exportPending(d.cl.Catalog()),
	}
	if err := d.appendMetaLocked(rec); err != nil {
		d.meta, d.metaOff, d.metaBase = oldMeta, oldOff, oldBase
		return err
	}
	if err := d.fs.SyncDir(dir); err != nil {
		return err
	}
	// Flip the manifest: the synced rename is the checkpoint's atomic
	// commit point.
	cur, err := d.fs.Create("CURRENT.tmp")
	if err != nil {
		return err
	}
	if _, err := cur.Write([]byte(dir + "\n")); err != nil {
		return err
	}
	if err := cur.Sync(); err != nil {
		return err
	}
	if err := cur.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename("CURRENT.tmp", "CURRENT"); err != nil {
		return err
	}
	if err := d.fs.SyncDir("."); err != nil {
		return err
	}
	d.counters.Syncs.Add(3)
	if oldMeta != nil {
		_ = oldMeta.Close()
	}
	if d.gen > 0 {
		_ = d.fs.RemoveAll(fmt.Sprintf("gen-%d", d.gen)) // best-effort
	}
	d.gen = newGen
	d.counters.Checkpoints.Add(1)
	return nil
}

// Sync flushes and fsyncs every open log without writing a barrier (the
// graceful-shutdown flush; committed state is already durable).
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return &storage.DurabilityError{Op: "sync", Err: d.failed}
	}
	for _, j := range d.journals {
		if _, err := j.sync(); err != nil {
			return &storage.DurabilityError{Op: "sync", Err: err}
		}
	}
	if d.meta != nil {
		if err := d.meta.Sync(); err != nil {
			return &storage.DurabilityError{Op: "sync", Err: err}
		}
		d.counters.Syncs.Add(1)
	}
	return nil
}

// Close syncs and closes every log and detaches from the cluster. Close
// errors are surfaced, not swallowed: a failed close means the last
// unsynced appends may not be durable.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cl != nil {
		for i := 0; i < d.nodes; i++ {
			d.cl.Node(i).Store.SetJournal(nil)
		}
		d.cl.SetDurable(nil)
	}
	var firstErr error
	for _, j := range d.journals {
		if err := j.close(); err != nil && firstErr == nil {
			firstErr = &storage.DurabilityError{Op: "close", Err: err}
		}
	}
	d.journals = nil
	if d.meta != nil {
		if err := d.meta.Sync(); err != nil && firstErr == nil {
			firstErr = &storage.DurabilityError{Op: "close", Err: err}
		}
		if err := d.meta.Close(); err != nil && firstErr == nil {
			firstErr = &storage.DurabilityError{Op: "close", Err: err}
		}
		d.meta = nil
	}
	d.cl = nil
	return firstErr
}
