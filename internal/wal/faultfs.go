package wal

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
)

// Injected faults and crash-state errors of the FaultFS.
var (
	// ErrCrashed is returned by every operation after a scheduled crash
	// fired: the "process" is dead until Restart.
	ErrCrashed = errors.New("wal: filesystem crashed")
	// ErrInjected is the base error of scheduled sync/write faults.
	ErrInjected = errors.New("wal: injected fault")
)

// FaultPlan is a deterministic fault schedule for a FaultFS. Operations
// (writes and syncs, in issue order across all files) are numbered from 1;
// an op index of 0 disables that fault. The same seed and schedule always
// reproduce the same failure, mirroring cluster.FaultFabric.
type FaultPlan struct {
	Seed int64
	// CrashAtOp simulates kill -9 immediately before the numbered
	// operation: unsynced suffixes are torn away (see Crash) and every
	// operation from then on returns ErrCrashed.
	CrashAtOp int64
	// FailSyncAtOp makes the numbered operation, if it is a Sync, fail
	// with ErrInjected without making anything durable. If the numbered
	// op is not a Sync, the next Sync at or after it fails.
	FailSyncAtOp int64
	// ShortWriteAtOp makes the numbered operation, if it is a Write,
	// persist only a seeded prefix of the buffer and return ErrInjected.
	// If the numbered op is not a Write, the next Write at or after it
	// fails.
	ShortWriteAtOp int64
}

// memFile is one in-memory file with durability tracking: data holds the
// full written contents, durable the length of the prefix guaranteed to
// survive a crash (advanced by Sync), entryDurable whether the directory
// entry itself survives (set by SyncDir on the parent).
type memFile struct {
	data         []byte
	durable      int
	entryDurable bool
	// prev is the durable entry this file displaced via Rename: until the
	// parent directory is synced, a crash reverts to it (POSIX rename is
	// atomic — a crash shows old or new, never neither).
	prev *memFile
}

// FaultFS is an in-memory FS with durability tracking and seeded fault
// injection — the filesystem analogue of cluster.FaultFabric. A fault-free
// FaultFS (NewMemFS) is an exact in-memory filesystem whose Crash method
// still models kill -9 truthfully: only fsynced prefixes survive, plus a
// seeded torn tail of whatever unsynced bytes happened to reach the disk.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	rng     *rand.Rand
	plan    FaultPlan
	ops     int64
	crashed bool
}

// NewMemFS returns an in-memory FS with no scheduled faults.
func NewMemFS() *FaultFS { return NewFaultFS(FaultPlan{}) }

// NewFaultFS returns an in-memory FS executing the given fault plan.
func NewFaultFS(plan FaultPlan) *FaultFS {
	return &FaultFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true},
		rng:   rand.New(rand.NewSource(plan.Seed ^ 0x1e3779b97f4a7c15)),
		plan:  plan,
	}
}

// Ops returns how many write/sync operations have been issued, so a test
// can measure a fault-free run and then schedule crashes inside [1, Ops].
func (m *FaultFS) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// TotalBytes returns the bytes currently resident across all files — the
// on-disk footprint an operator would see, which checkpoints compact.
func (m *FaultFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, f := range m.files {
		n += int64(len(f.data))
	}
	return n
}

// Crashed reports whether the scheduled crash has fired.
func (m *FaultFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// step numbers one write/sync operation and fires the crash fault.
// Caller holds m.mu. Returns an error if the fs is (now) crashed.
func (m *FaultFS) step() error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.plan.CrashAtOp > 0 && m.ops >= m.plan.CrashAtOp {
		m.crashLocked()
		return ErrCrashed
	}
	return nil
}

// Crash simulates kill -9: files whose directory entry was never synced
// vanish; every other file keeps its synced prefix plus a seeded torn tail
// of the unsynced suffix (possibly with flipped bits, as a real torn
// sector would show). The FS then behaves as freshly restarted: surviving
// contents are durable and new operations are accepted.
func (m *FaultFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashLocked()
	m.crashed = false // restarted
}

// ScheduleCrash arms (or, with 0, disarms) the crash fault at the given
// absolute op index, so a test can chain several crash/recover cycles on
// one FS — including crashes in the middle of recovery itself.
func (m *FaultFS) ScheduleCrash(op int64) {
	m.mu.Lock()
	m.plan.CrashAtOp = op
	m.mu.Unlock()
}

// Restart clears the crashed flag after a scheduled crash fired, so the
// same FS can be reopened for recovery.
func (m *FaultFS) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
}

func (m *FaultFS) crashLocked() {
	m.crashed = true
	m.plan.CrashAtOp = 0 // fire once
	for name, f := range m.files {
		if !f.entryDurable {
			if f.prev != nil {
				m.files[name] = f.prev // unsynced rename reverts
			} else {
				delete(m.files, name)
			}
			continue
		}
		tail := len(f.data) - f.durable
		if tail > 0 {
			// A seeded fraction of the unsynced suffix made it out of the
			// page cache; corrupt up to its last 4 bytes to model a torn
			// sector.
			kept := m.rng.Intn(tail + 1)
			f.data = f.data[:f.durable+kept]
			for i := 0; i < 4 && kept > 0 && m.rng.Intn(2) == 0; i++ {
				p := f.durable + m.rng.Intn(kept)
				f.data[p] ^= byte(1 << m.rng.Intn(8))
			}
		}
		f.durable = len(f.data)
		f.entryDurable = true // whatever survived is on disk now
		f.prev = nil
	}
}

type faultFile struct {
	fs   *FaultFS
	name string
}

func (f *faultFile) Write(p []byte) (int, error) {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return 0, err
	}
	mf, ok := m.files[f.name]
	if !ok {
		return 0, fmt.Errorf("wal: write to removed file %s", f.name)
	}
	if m.plan.ShortWriteAtOp > 0 && m.ops >= m.plan.ShortWriteAtOp {
		m.plan.ShortWriteAtOp = 0 // fire once
		n := 0
		if len(p) > 0 {
			n = m.rng.Intn(len(p))
		}
		mf.data = append(mf.data, p[:n]...)
		return n, fmt.Errorf("%w: short write of %s (%d of %d bytes)", ErrInjected, f.name, n, len(p))
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	if m.plan.FailSyncAtOp > 0 && m.ops >= m.plan.FailSyncAtOp {
		m.plan.FailSyncAtOp = 0 // fire once
		return fmt.Errorf("%w: fsync of %s failed", ErrInjected, f.name)
	}
	if mf, ok := m.files[f.name]; ok {
		mf.durable = len(mf.data)
	}
	return nil
}

func (f *faultFile) Close() error {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

func (m *FaultFS) Create(name string) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.dirs[path.Dir(name)] {
		return nil, fmt.Errorf("wal: create %s: parent directory missing", name)
	}
	m.files[name] = &memFile{}
	return &faultFile{fs: m, name: name}, nil
}

func (m *FaultFS) ReadFile(name string) ([]byte, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: %s: %w", name, errNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// errNotExist matches the os package's sentinel so Open's fresh-directory
// probe works identically over OSFS and FaultFS.
var errNotExist = iofs.ErrNotExist

func (m *FaultFS) ReadDir(name string) ([]string, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.dirs[name] {
		return nil, fmt.Errorf("wal: dir %s: %w", name, errNotExist)
	}
	seen := map[string]bool{}
	for f := range m.files {
		if path.Dir(f) == name {
			seen[path.Base(f)] = true
		}
	}
	for d := range m.dirs {
		if d != name && path.Dir(d) == name {
			seen[path.Base(d)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

func (m *FaultFS) Remove(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, errNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *FaultFS) RemoveAll(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	prefix := name + "/"
	for f := range m.files {
		if f == name || strings.HasPrefix(f, prefix) {
			delete(m.files, f)
		}
	}
	for d := range m.dirs {
		if d == name || strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	return nil
}

func (m *FaultFS) Rename(oldName, newName string) error {
	oldName, newName = path.Clean(oldName), path.Clean(newName)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldName, errNotExist)
	}
	delete(m.files, oldName)
	// The rename itself is a directory mutation: it survives a crash only
	// once the parent directory is synced; until then a crash reverts to
	// the durable entry it displaced (if any).
	var prev *memFile
	if old, ok := m.files[newName]; ok {
		if old.entryDurable {
			prev = old
		} else {
			prev = old.prev
		}
	}
	m.files[newName] = &memFile{data: f.data, durable: f.durable, entryDurable: false, prev: prev}
	return nil
}

func (m *FaultFS) MkdirAll(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for d := name; ; d = path.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == "/" {
			break
		}
	}
	return nil
}

func (m *FaultFS) SyncDir(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	if !m.dirs[name] {
		return fmt.Errorf("wal: sync dir %s: %w", name, errNotExist)
	}
	for f, mf := range m.files {
		if path.Dir(f) == name {
			mf.entryDurable = true
			mf.prev = nil
		}
	}
	return nil
}
