package wal

import (
	"fmt"
	"strings"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
)

// segRef addresses one chunk body inside a segment file.
type segRef struct{ off, size int64 }

// journal is one worker node's durable log: a segment file of deduplicated
// ACH1 chunk bodies plus a WAL of framed put/delete/drop records, both
// append-only. It implements storage.Journal; the owning store invokes it
// under the store lock, so appends are strictly in apply order. Scratch
// ("#") namespaces — staging, per-batch deltas — are transient by design
// and are skipped entirely.
//
// At a checkpoint the Durable owner swaps the underlying files via reset;
// the journal object itself stays installed on the store for its lifetime.
type journal struct {
	node     int
	counters *obs.DurableCounters

	// Guarded by mu (the store lock serializes mutations, but checkpoint
	// swaps and barrier syncs come from the Durable goroutine).
	mu     chan struct{} // 1-buffered semaphore; avoids copying a sync.Mutex on reset
	seg    File
	wal    File
	segOff int64
	walOff int64
	dedup  map[uint64]segRef
	dirty  bool
	// failed latches a torn WAL append: partial record bytes make every
	// later append unreadable to replay, so the journal fail-stops (every
	// operation and sync errors) until a checkpoint swaps in fresh files.
	// A torn segment write is recoverable in place — the partial body is
	// simply never referenced — so it does not latch.
	failed error
	// baseSeg/baseWal are the offsets right after the last checkpoint, so
	// growth() measures log bytes accumulated since.
	baseSeg, baseWal int64
}

func newJournal(node int, counters *obs.DurableCounters) *journal {
	j := &journal{node: node, counters: counters, mu: make(chan struct{}, 1)}
	j.mu <- struct{}{}
	return j
}

func (j *journal) lock()   { <-j.mu }
func (j *journal) unlock() { j.mu <- struct{}{} }

// reset installs fresh (empty, just-created) segment and WAL files,
// closing any previous pair. Used at open and at every checkpoint swap.
func (j *journal) reset(seg, wal File) error {
	j.lock()
	defer j.unlock()
	var firstErr error
	for _, f := range []File{j.seg, j.wal} {
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	j.seg, j.wal = seg, wal
	j.segOff, j.walOff = 0, 0
	j.baseSeg, j.baseWal = 0, 0
	j.dedup = make(map[uint64]segRef)
	j.dirty = false
	j.failed = nil
	return firstErr
}

// markBase records the current offsets as the checkpoint base.
func (j *journal) markBase() {
	j.lock()
	j.baseSeg, j.baseWal = j.segOff, j.walOff
	j.unlock()
}

// durableArray reports whether mutations of the named array are journaled.
// Scratch namespaces (any name containing "#": staging, per-batch deltas)
// never survive a restart — recovery starts them empty, matching the
// cleanup semantics of the commit protocol.
func durableArray(name string) bool { return !strings.Contains(name, "#") }

// appendRec frames and appends one record to the WAL. Caller holds j.mu.
func (j *journal) appendRec(r journalRec) error {
	buf := appendFrame(nil, encodeJournalRec(r))
	n, err := j.wal.Write(buf)
	j.walOff += int64(n) // track partial bytes too: they are in the file
	if err != nil {
		j.failed = fmt.Errorf("wal: node %d journal torn at %d: %w", j.node, j.walOff, err)
		return j.failed
	}
	j.dirty = true
	j.counters.WALBytes.Add(int64(len(buf)))
	return nil
}

// JournalPut logs an install of enc under (arrayName, key). The body is
// written to the segment file unless an identical content hash was already
// written there (content-addressed dedup, as on the wire).
func (j *journal) JournalPut(arrayName string, key array.ChunkKey, enc []byte, hash uint64) error {
	if !durableArray(arrayName) {
		return nil
	}
	j.lock()
	defer j.unlock()
	if j.failed != nil {
		return j.failed
	}
	ref, ok := j.dedup[hash]
	if !ok || ref.size != int64(len(enc)) {
		off := j.segOff
		n, err := j.seg.Write(enc)
		j.segOff += int64(n) // a torn body stays in the file, unreferenced
		if err != nil {
			return fmt.Errorf("wal: node %d segment append: %w", j.node, err)
		}
		ref = segRef{off: off, size: int64(len(enc))}
		j.dedup[hash] = ref
		j.dirty = true
		j.counters.SegBytes.Add(int64(len(enc)))
	}
	return j.appendRec(journalRec{kind: recPut, array: arrayName, key: key, hash: hash, off: ref.off, size: ref.size})
}

// JournalDelete logs an eviction.
func (j *journal) JournalDelete(arrayName string, key array.ChunkKey) error {
	if !durableArray(arrayName) {
		return nil
	}
	j.lock()
	defer j.unlock()
	if j.failed != nil {
		return j.failed
	}
	return j.appendRec(journalRec{kind: recDelete, array: arrayName, key: key})
}

// JournalDropArray logs a whole-array drop.
func (j *journal) JournalDropArray(arrayName string) error {
	if !durableArray(arrayName) {
		return nil
	}
	j.lock()
	defer j.unlock()
	if j.failed != nil {
		return j.failed
	}
	return j.appendRec(journalRec{kind: recDropArray, array: arrayName})
}

// sync fsyncs the segment then the WAL (in that order: a synced WAL record
// must never reference unsynced segment bytes) and returns the WAL cut —
// the offset up to which a barrier may declare this journal replayable.
func (j *journal) sync() (cut int64, err error) {
	j.lock()
	defer j.unlock()
	if j.failed != nil {
		return 0, j.failed
	}
	if j.dirty {
		if err := j.seg.Sync(); err != nil {
			return 0, fmt.Errorf("wal: node %d segment fsync: %w", j.node, err)
		}
		if err := j.wal.Sync(); err != nil {
			return 0, fmt.Errorf("wal: node %d journal fsync: %w", j.node, err)
		}
		j.counters.Syncs.Add(2)
		j.dirty = false
	}
	return j.walOff, nil
}

// growth returns log bytes appended since the last checkpoint.
func (j *journal) growth() int64 {
	j.lock()
	defer j.unlock()
	return (j.segOff - j.baseSeg) + (j.walOff - j.baseWal)
}

// close closes the underlying files (syncing first). A sync failure is
// still followed by the closes — and surfaced, not swallowed.
func (j *journal) close() error {
	_, firstErr := j.sync()
	j.lock()
	defer j.unlock()
	for _, f := range []File{j.seg, j.wal} {
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: node %d close: %w", j.node, err)
			}
		}
	}
	j.seg, j.wal = nil, nil
	return firstErr
}

// replayJournal reconstructs one node's durable chunks from its WAL and
// segment file, applying records strictly up to cut and verifying every
// chunk body against its recorded content hash. The result maps store
// keys (arrayName, key) to their canonical encodings.
func replayJournal(walData, segData []byte, cut int64) (map[string]map[array.ChunkKey][]byte, error) {
	chunks := make(map[string]map[array.ChunkKey][]byte)
	var replayErr error
	var reached int64
	valid := frames(walData, func(payload []byte, end int64) bool {
		if end > cut {
			return false
		}
		reached = end
		r, err := decodeJournalRec(payload)
		if err != nil {
			replayErr = err
			return false
		}
		switch r.kind {
		case recPut:
			if r.off < 0 || r.size < 0 || r.off+r.size > int64(len(segData)) {
				replayErr = fmt.Errorf("wal: segment ref %d+%d beyond %d bytes", r.off, r.size, len(segData))
				return false
			}
			body := segData[r.off : r.off+r.size]
			if array.HashChunkBytes(body) != r.hash {
				replayErr = fmt.Errorf("wal: segment body of %s/%x fails content-hash check", r.array, string(r.key))
				return false
			}
			byArr, ok := chunks[r.array]
			if !ok {
				byArr = make(map[array.ChunkKey][]byte)
				chunks[r.array] = byArr
			}
			byArr[r.key] = body
		case recDelete:
			delete(chunks[r.array], r.key)
		case recDropArray:
			delete(chunks, r.array)
		default:
			replayErr = fmt.Errorf("wal: unknown journal record kind %d", r.kind)
			return false
		}
		return true
	})
	if replayErr != nil {
		return nil, replayErr
	}
	// The cut was declared durable by a synced meta record, so the journal
	// must hold intact records through it; stopping short means the log
	// was corrupted inside its committed prefix.
	if reached < cut {
		return nil, fmt.Errorf("wal: journal valid to %d, committed cut %d (valid prefix %d)", reached, cut, valid)
	}
	return chunks, nil
}
