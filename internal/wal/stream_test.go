package wal

import (
	"testing"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/stream"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/workload"
)

// runStream pushes every batch through a pipelined stream.Graph attached
// to the given durable cluster and returns the per-batch results.
func runStream(t *testing.T, d *Durable, data *workload.Dataset, def *view.Definition) []stream.Result {
	t.Helper()
	cl := buildCluster(t, data, def)
	if err := d.Attach(cl); err != nil {
		return nil // crashed inside the recovery checkpoint: nothing admitted
	}
	g, err := stream.NewGraph(stream.Config{
		Cluster:        cl,
		Def:            def,
		Params:         maintain.DefaultParams(),
		ArrayPlacement: testPlacement(),
		ViewPlacement:  testPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*stream.Ticket, 0, len(data.Batches))
	for i, b := range data.Batches {
		tk, err := g.Submit(b)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	g.Drain()
	g.Close()
	out := make([]stream.Result, 0, len(tickets))
	for _, tk := range tickets {
		out = append(out, tk.Wait())
	}
	return out
}

// The streamed maintenance path honors the same durability contract as the
// batch path: a crash at any pipeline point recovers to a state that is a
// clean replay of a prefix of the stream — every acknowledged batch is in,
// nothing is half-applied — even though transfers, joins, and commits of
// several batches were interleaved in flight when the power went out.
func TestDurableStreamCrashRecovery(t *testing.T) {
	data, def := testData(t)

	// Fault-free probe: measure the op range and confirm the stream path
	// round-trips through recovery at all.
	probe := NewMemFS()
	d, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runStream(t, d, data, def) {
		if r.Err != nil {
			t.Fatalf("fault-free stream batch %d: %v", i, r.Err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	opsTotal := probe.Ops()

	// Oracles: clean batch replays of every possible committed prefix
	// (stream commit order is admission order, and the streamed state
	// matches batch replay — see stream.TestGraphMatchesBatchReplay).
	oracles := make([]arrayPair, len(data.Batches)+1)
	for k := 0; k <= len(data.Batches); k++ {
		base, vw := cleanReplay(t, data, def, k)
		oracles[k] = arrayPair{base: base, view: vw}
	}

	const samples = 8
	for s := 0; s < samples; s++ {
		crashAt := 1 + opsTotal*int64(s)/samples
		fs := NewFaultFS(FaultPlan{Seed: 4000 + int64(s), CrashAtOp: crashAt})
		d, rec, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("sample %d: open: %v", s, err)
		}
		if rec != nil {
			t.Fatalf("sample %d: fresh fs recovered state", s)
		}
		results := runStream(t, d, data, def)
		acked := 0
		for _, r := range results {
			if r.Err != nil {
				break
			}
			acked++
		}
		if !fs.Crashed() {
			if acked != len(data.Batches) {
				t.Fatalf("sample %d: no crash but only %d acked", s, acked)
			}
			fs.Crash()
		} else {
			fs.Restart()
		}
		d.Close() // crashed handle; error expected, files are gone anyway

		cl2, rec2 := recoverCluster(t, fs)
		if rec2 == nil {
			// The crash beat even the first checkpoint flip; legal only if
			// nothing was ever acknowledged.
			if acked != 0 {
				t.Fatalf("sample %d: %d batches acked but nothing recovered", s, acked)
			}
			continue
		}
		gotBase, gotView := gatherState(t, cl2, def)
		match := -1
		for k := acked; k <= len(data.Batches); k++ {
			if sameArray(gotBase, oracles[k].base) && sameArray(gotView, oracles[k].view) {
				match = k
				break
			}
		}
		if match < 0 {
			t.Fatalf("sample %d (crash at op %d/%d): recovered state is a hybrid — %d acked, matches no committed prefix",
				s, crashAt, opsTotal, acked)
		}
	}
}

// recoverCluster reopens the FS and installs the recovered state (if any)
// into a fresh cluster.
func recoverCluster(t *testing.T, fs *FaultFS) (*cluster.Cluster, *Recovered) {
	t.Helper()
	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	cl, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		if err := rec.Install(cl); err != nil {
			t.Fatalf("install: %v", err)
		}
	}
	return cl, rec
}
