package wal

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/storage"
)

// A full maintenance run over a fault-free FaultFS must reopen to exactly
// the final state, with one barrier per batch.
func TestDurableRoundTrip(t *testing.T) {
	data, def := testData(t)
	fs := NewMemFS()

	d, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh directory must recover nothing")
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	wantBase, wantView := gatherState(t, cl, def)
	if got, want := d.Seq(), uint64(len(data.Batches)); got != want {
		t.Errorf("barrier seq = %d, want %d", got, want)
	}
	if got, want := d.Applied(), uint64(len(data.Batches)); got != want {
		t.Errorf("applied cursor = %d, want %d", got, want)
	}
	cs := d.Counters().Snapshot()
	if cs.Commits != int64(len(data.Batches)) || cs.Syncs == 0 || cs.WALBytes == 0 {
		t.Errorf("counters off: %+v", cs)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rec2, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil {
		t.Fatal("no state recovered")
	}
	if rec2.Seq != uint64(len(data.Batches)) || rec2.Kind != "commit" {
		t.Errorf("recovered barrier %d/%s, want %d/commit", rec2.Seq, rec2.Kind, len(data.Batches))
	}
	cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.Install(cl2); err != nil {
		t.Fatal(err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatal("recovered state differs from pre-restart state")
	}
	// The recovered cluster keeps maintaining: attach and run a batch
	// replay-free sanity pass (fresh deltas only exist in data.Batches, so
	// re-apply nothing; just verify Attach checkpoints cleanly).
	if err := d2.Attach(cl2); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// The core recovery contract: kill -9 at ANY write/sync/syncdir boundary
// after Attach recovers either pre-batch or post-batch state of the batch
// in flight — never a hybrid. The sweep samples crash points across the
// whole run.
func TestDurableCrashMatrix(t *testing.T) {
	data, def := testData(t)

	// Measure a fault-free run to size the op space.
	probe := NewMemFS()
	d, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("probe batch %d: %v", i, err)
		}
	}
	opsTotal := probe.Ops()
	if opsTotal <= opsAttach {
		t.Fatalf("workload issued no durable ops (%d..%d)", opsAttach, opsTotal)
	}

	// Clean-replay oracle per committed-batch count.
	oracles := make([]*arrayPair, len(data.Batches)+1)
	for k := 0; k <= len(data.Batches); k++ {
		b, v := cleanReplay(t, data, def, k)
		oracles[k] = &arrayPair{b, v}
	}

	const samples = 14
	span := opsTotal - opsAttach
	for s := 0; s < samples; s++ {
		crashAt := opsAttach + 1 + span*int64(s)/samples
		fs := NewFaultFS(FaultPlan{Seed: int64(1000 + s), CrashAtOp: crashAt})
		dc, rec, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("crash@%d: open: %v", crashAt, err)
		}
		if rec != nil {
			t.Fatalf("crash@%d: fresh fs recovered state", crashAt)
		}
		clc := buildCluster(t, data, def)
		mc := newMaintainer(t, clc, def)
		if err := dc.Attach(clc); err != nil {
			t.Fatalf("crash@%d: attach: %v", crashAt, err)
		}
		acked := 0
		for _, b := range data.Batches {
			if _, err := mc.ApplyBatch(b); err != nil {
				break
			}
			acked++
		}
		if !fs.Crashed() && acked == len(data.Batches) {
			// Op counts drift slightly run to run (worker scheduling);
			// a late crash point can land beyond the run. Still verify
			// the full round trip.
			fs.Crash()
		}
		fs.Restart()

		d2, rec2, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("crash@%d: recovery open: %v", crashAt, err)
		}
		if rec2 == nil {
			t.Fatalf("crash@%d: no state recovered (attach checkpoint was durable)", crashAt)
		}
		cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := rec2.Install(cl2); err != nil {
			t.Fatalf("crash@%d: install: %v", crashAt, err)
		}
		gotBase, gotView := gatherState(t, cl2, def)
		match := -1
		for _, k := range []int{acked, acked + 1} {
			if k < 0 || k > len(data.Batches) {
				continue
			}
			if sameArray(gotBase, oracles[k].base) && sameArray(gotView, oracles[k].view) {
				match = k
				break
			}
		}
		if match < 0 {
			t.Errorf("crash@%d: recovered state is a hybrid (acked %d batches)", crashAt, acked)
		}
		_ = d2
		_ = dc
	}
}

// A sync failure during the commit barrier must surface as a typed
// DurabilityError through maintain's commit path, roll the batch back, and
// leave the durable state recoverable at the pre-batch barrier.
func TestDurableSyncErrorPropagates(t *testing.T) {
	data, def := testData(t)

	probe := NewMemFS()
	dp, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clp := buildCluster(t, data, def)
	if err := dp.Attach(clp); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()

	fs := NewFaultFS(FaultPlan{Seed: 99, FailSyncAtOp: opsAttach + 1})
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	_, err = m.ApplyBatch(data.Batches[0])
	if err == nil {
		t.Fatal("batch must fail when the barrier fsync fails")
	}
	var de *storage.DurabilityError
	if !errors.As(err, &de) {
		t.Fatalf("error %v does not unwrap to *storage.DurabilityError", err)
	}
	if de.Op != "sync" {
		t.Errorf("DurabilityError op = %q, want sync", de.Op)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error chain %v lost the injected cause", err)
	}

	// The fault fired once; the batch retries cleanly and the final state
	// round-trips.
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("retry batch %d: %v", i, err)
		}
	}
	wantBase, wantView := gatherState(t, cl, def)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl2, _ := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err := rec.Install(cl2); err != nil {
		t.Fatal(err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatal("state after injected sync failure does not round-trip")
	}
}

// A short write while journaling a store mutation must fail that mutation
// with a typed DurabilityError — the write-ahead contract: a chunk whose
// journal record could not be appended is never installed.
func TestDurableShortWriteFailsPut(t *testing.T) {
	data, def := testData(t)

	probe := NewMemFS()
	dp, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clp := buildCluster(t, data, def)
	if err := dp.Attach(clp); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()

	fs := NewFaultFS(FaultPlan{Seed: 5, ShortWriteAtOp: opsAttach + 1})
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	// Re-put a resident base chunk: the journal append is the next write
	// and gets torn.
	alpha := def.Alpha.Name
	var fired bool
	for i := 0; i < testNodes && !fired; i++ {
		st := cl.Node(i).Store
		for _, k := range st.Keys(alpha) {
			ch, err := st.Get(alpha, k)
			if err != nil {
				t.Fatal(err)
			}
			err = st.Put(alpha, ch)
			if err == nil {
				continue
			}
			var de *storage.DurabilityError
			if !errors.As(err, &de) {
				t.Fatalf("error %v does not unwrap to *storage.DurabilityError", err)
			}
			if de.Op != "put" {
				t.Errorf("DurabilityError op = %q, want put", de.Op)
			}
			if !errors.Is(err, ErrInjected) {
				t.Errorf("error chain %v lost the injected cause", err)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("short write never fired")
	}
	// If the tear hit the WAL (not the segment), the journal fail-stops and
	// Close must surface that — typed, not swallowed.
	if err := d.Close(); err != nil {
		var de *storage.DurabilityError
		if !errors.As(err, &de) {
			t.Fatalf("close error %v does not unwrap to *storage.DurabilityError", err)
		}
	}
}

// A short write during maintenance itself is either absorbed (the dedup
// offer declines and the wire layer re-ships the chunk in full) or fails
// the batch; in both cases the durable state must match a clean replay of
// exactly the acked batches.
func TestDurableShortWriteDuringBatch(t *testing.T) {
	data, def := testData(t)

	probe := NewMemFS()
	dp, _, err := Open(probe, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clp := buildCluster(t, data, def)
	if err := dp.Attach(clp); err != nil {
		t.Fatal(err)
	}
	opsAttach := probe.Ops()

	fs := NewFaultFS(FaultPlan{Seed: 5, ShortWriteAtOp: opsAttach + 1})
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	acked := 0
	if _, err := m.ApplyBatch(data.Batches[0]); err == nil {
		acked = 1
	} else {
		var de *storage.DurabilityError
		if !errors.As(err, &de) {
			t.Fatalf("failed batch error %v does not unwrap to *storage.DurabilityError", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl2, _ := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err := rec.Install(cl2); err != nil {
		t.Fatal(err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	wantBase, wantView := cleanReplay(t, data, def, acked)
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatalf("durable state does not match clean replay of %d acked batches", acked)
	}
}

// Checkpoint compaction: with a tiny threshold every barrier triggers a
// fresh generation; state still round-trips and old generations are gone.
func TestDurableCheckpointCompaction(t *testing.T) {
	data, def := testData(t)
	fs := NewMemFS()
	d, _, err := Open(fs, testNodes, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if got := d.Counters().Snapshot().Checkpoints; got < int64(len(data.Batches)) {
		t.Errorf("expected a checkpoint per barrier, got %d", got)
	}
	wantBase, wantView := gatherState(t, cl, def)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for _, n := range names {
		if len(n) > 4 && n[:4] == "gen-" {
			gens++
		}
	}
	if gens != 1 {
		t.Errorf("compaction left %d generations (%v), want 1", gens, names)
	}
	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no state recovered after compaction")
	}
	cl2, _ := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err := rec.Install(cl2); err != nil {
		t.Fatal(err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatal("compacted state does not round-trip")
	}
}

// Deferred light-chunk deltas (the adaptive pending log) survive a kill -9
// and still materialize in batch order on touch: recovered lazy state must
// equal an all-eager replay.
func TestDurablePendingLogSurvivesRestart(t *testing.T) {
	data, def := testData(t)
	cfg := maintain.AdaptiveConfig{HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5}

	fs := NewMemFS()
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	am, err := maintain.NewAdaptiveMaintainer(cl, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am.Inner().SetPlacements(testPlacement(), testPlacement())
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	deferred := 0
	for i, b := range data.Batches {
		rep, err := am.ApplyBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		deferred += rep.LightChunks
	}
	if deferred == 0 {
		t.Fatal("workload produced no deferred chunks; test is vacuous")
	}

	fs.Crash() // kill -9

	_, rec, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no state recovered")
	}
	cl2, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Install(cl2); err != nil {
		t.Fatal(err)
	}
	if cl2.Catalog().Pending().Stats().Entries == 0 {
		t.Fatal("pending log did not survive the restart")
	}
	am2, err := maintain.NewAdaptiveMaintainer(cl2, def, maintain.Strategies()["reassign"], maintain.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am2.Inner().SetPlacements(testPlacement(), testPlacement())
	if err := am2.EnsureFresh(context.Background()); err != nil {
		t.Fatalf("materializing recovered pending log: %v", err)
	}
	gotBase, gotView := gatherState(t, cl2, def)
	wantBase, wantView := cleanReplay(t, data, def, len(data.Batches))
	if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
		t.Fatal("recovered lazy state diverges from all-eager replay")
	}
}
