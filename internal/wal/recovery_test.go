package wal

import (
	"reflect"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// Recovery replay is idempotent: opening the same directory twice recovers
// byte-identical state (Open never writes), and a crash anywhere inside the
// recovery checkpoint itself — Attach rebuilding a fresh generation — still
// recovers the same state on the next attempt, for as many crash/recover
// cycles as it takes.
func TestDurableRecoveryIdempotent(t *testing.T) {
	data, def := testData(t)
	fs := NewMemFS()
	d, _, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, data, def)
	m := newMaintainer(t, cl, def)
	if err := d.Attach(cl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.ApplyBatch(data.Batches[i]); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	fs.Crash() // kill -9

	// Replaying the same log twice yields byte-identical recovered state.
	_, r1, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Open(fs, testNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == nil || !reflect.DeepEqual(r1, r2) {
		t.Fatal("double recovery is not byte-identical")
	}

	// Reference state: recover, re-attach fault-free, gather.
	clRef, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Install(clRef); err != nil {
		t.Fatal(err)
	}
	opsBefore := fs.Ops()
	dRef, r, err := Open(fs, testNodes, Options{})
	if err != nil || r == nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := dRef.Attach(clRef); err != nil {
		t.Fatal(err)
	}
	attachOps := fs.Ops() - opsBefore
	wantBase, wantView := gatherState(t, clRef, def)
	if err := dRef.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash at sampled points inside the recovery checkpoint, recover
	// again; every cycle must land back on the same state.
	const cycles = 8
	for c := 0; c < cycles; c++ {
		k := 1 + attachOps*int64(c)/cycles
		fs.ScheduleCrash(fs.Ops() + k)
		dc, rc, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("cycle %d: open: %v", c, err)
		}
		if rc == nil {
			t.Fatalf("cycle %d: recovered nothing", c)
		}
		clc, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.Install(clc); err != nil {
			t.Fatalf("cycle %d: install: %v", c, err)
		}
		if err := dc.Attach(clc); err == nil {
			// Crash point fell beyond this attach; disarm and kill -9
			// right after the checkpoint instead.
			fs.ScheduleCrash(0)
			fs.Crash()
		} else {
			fs.Restart()
		}
		clv, err := cluster.New(testNodes, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		_, rv, err := Open(fs, testNodes, Options{})
		if err != nil {
			t.Fatalf("cycle %d: verify open: %v", c, err)
		}
		if rv == nil {
			t.Fatalf("cycle %d: state lost", c)
		}
		if err := rv.Install(clv); err != nil {
			t.Fatalf("cycle %d: verify install: %v", c, err)
		}
		gotBase, gotView := gatherState(t, clv, def)
		if !sameArray(gotBase, wantBase) || !sameArray(gotView, wantView) {
			t.Fatalf("cycle %d: recovered state drifted", c)
		}
	}
}

// The pending log round-trips through Entries/Reset in batch order.
func TestPendingEntriesResetRoundTrip(t *testing.T) {
	data, _ := testData(t)
	var chunks []*array.Chunk
	data.Batches[0].EachChunk(func(c *array.Chunk) bool {
		chunks = append(chunks, c)
		return true
	})
	if len(chunks) < 2 {
		t.Skip("need at least two chunks")
	}
	l := cluster.NewPendingLog()
	l.Append(cluster.PendingEntry{Seq: 2, Key: chunks[0].Key(), Chunk: chunks[0], Epoch: 7})
	l.Append(cluster.PendingEntry{Seq: 1, Key: chunks[1].Key(), Chunk: chunks[1], Epoch: 6})
	es := l.Entries()
	if len(es) != 2 || es[0].Seq != 1 || es[1].Seq != 2 {
		t.Fatalf("Entries not in batch order: %+v", es)
	}
	l2 := cluster.NewPendingLog()
	l2.Reset(es)
	es2 := l2.Entries()
	if !reflect.DeepEqual(es, es2) {
		t.Fatal("Reset does not round-trip Entries")
	}
	if l2.Stats().Cells != l.Stats().Cells || l2.Stats().Batches != 2 {
		t.Fatalf("Reset stats off: %+v vs %+v", l2.Stats(), l.Stats())
	}
}
