package wal

import (
	"fmt"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// Meta records carry full catalog and pending-log snapshots, JSON-encoded
// in deterministic order. Chunk keys are raw big-endian coordinate bytes —
// not valid UTF-8 — so they travel as []byte (base64 under encoding/json).

// metaRecord is one barrier in the coordinator meta log. Every record is a
// self-contained consistent cut: recovery needs only the last valid one.
type metaRecord struct {
	// Kind is "commit", "rollback", "skip" (a consumed input batch that
	// wrote no retiring commit of its own), or "checkpoint" (the base
	// record a fresh generation starts with). All four mark consistent
	// cuts.
	Kind string
	// Seq is the monotonic barrier number, continued across checkpoints.
	Seq uint64
	// Applied counts top-level input batches durably consumed: retiring
	// commit barriers and skip barriers advance it, everything else
	// (rollbacks, materialization commits, extra barriers) carries it
	// forward unchanged. Restart resume indexes the input feed with it —
	// never with Seq, which counts barriers, not batches.
	Applied uint64
	// Epoch is the epoch counter to fast-forward to on recovery.
	Epoch uint64
	// Cuts holds each worker journal's replayable WAL length.
	Cuts []int64
	// Catalog and Pending snapshot the durable coordinator state.
	Catalog []catArray
	Pending []pendingRec
}

type catArray struct {
	Name   string
	Schema *array.Schema
	Chunks []catChunk
}

type catChunk struct {
	Key      []byte
	Home     int
	Size     int64
	Cells    int
	Replicas []int
	BBox     *array.Region `json:",omitempty"`
	Hash     *uint64       `json:",omitempty"`
	EncSize  int64         `json:",omitempty"`
}

type pendingRec struct {
	Seq   int
	Key   []byte
	Epoch uint64
	Chunk []byte // ACH1 encoding
}

// exportCatalog snapshots every durable (non-scratch) array of the
// catalog, deterministically ordered.
func exportCatalog(cat *cluster.Catalog) []catArray {
	names := cat.Names()
	sort.Strings(names)
	out := make([]catArray, 0, len(names))
	for _, name := range names {
		if !durableArray(name) {
			continue
		}
		m, ok := cat.SnapshotMeta(name)
		if !ok {
			continue
		}
		keys := make([]array.ChunkKey, 0, len(m.Home))
		for k := range m.Home {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		ca := catArray{Name: name, Schema: m.Schema, Chunks: make([]catChunk, 0, len(keys))}
		for _, k := range keys {
			cc := catChunk{
				Key:   []byte(k),
				Home:  m.Home[k],
				Size:  m.Size[k],
				Cells: m.Cells[k],
			}
			for r := range m.Replicas[k] {
				cc.Replicas = append(cc.Replicas, r)
			}
			sort.Ints(cc.Replicas)
			if bb, ok := m.BBox[k]; ok {
				bb := bb
				cc.BBox = &bb
			}
			if h, ok := m.Hash[k]; ok {
				h := h
				cc.Hash = &h
				cc.EncSize = m.EncSize[k]
			}
			ca.Chunks = append(ca.Chunks, cc)
		}
		out = append(out, ca)
	}
	return out
}

// exportPending snapshots the catalog's pending-delta log.
func exportPending(cat *cluster.Catalog) []pendingRec {
	entries := cat.Pending().Entries()
	out := make([]pendingRec, 0, len(entries))
	for _, e := range entries {
		out = append(out, pendingRec{
			Seq:   e.Seq,
			Key:   []byte(e.Key),
			Epoch: e.Epoch,
			Chunk: array.EncodeChunk(e.Chunk),
		})
	}
	return out
}

// importPending rebuilds the pending log from a snapshot.
func importPending(cat *cluster.Catalog, recs []pendingRec) error {
	entries := make([]cluster.PendingEntry, 0, len(recs))
	for _, r := range recs {
		ch, err := array.DecodeChunk(r.Chunk)
		if err != nil {
			return fmt.Errorf("wal: restore pending entry seq %d: %w", r.Seq, err)
		}
		entries = append(entries, cluster.PendingEntry{
			Seq:   r.Seq,
			Key:   array.ChunkKey(r.Key),
			Epoch: r.Epoch,
			Chunk: ch,
		})
	}
	cat.Pending().Reset(entries)
	return nil
}
