package array

import (
	"bytes"
	"testing"
)

// fuzzSeedChunk builds a small populated chunk for seeding the fuzzers.
func fuzzSeedChunk() *Chunk {
	c := NewChunk(indexSchema(), ChunkCoord{0, 0})
	for i := int64(0); i < 8; i++ {
		if err := c.Set(Point{i * 2, i}, Tuple{float64(i) * 1.5}); err != nil {
			panic(err)
		}
	}
	return c
}

// FuzzDecodeChunk throws arbitrary bytes at the ACH1 decoder. Malformed
// input must fail cleanly — no panic, no runaway allocation — and anything
// that decodes must re-encode canonically to a stable fixed point whose
// hash matches the cached ContentHash.
func FuzzDecodeChunk(f *testing.F) {
	f.Add(EncodeChunk(fuzzSeedChunk()))
	f.Add(EncodeChunk(NewChunk(indexSchema(), ChunkCoord{1, 0})))
	// A corpus of near-valid corruptions: bad magic, truncations, and a
	// hostile cell count over a valid header.
	valid := EncodeChunk(fuzzSeedChunk())
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	f.Add(bad)
	f.Add(valid[:len(valid)/2])
	big := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		big[len(big)-len(valid)%8-8+i] = 0xFF // stomp into the cell area
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeChunk(data)
		if err != nil {
			return
		}
		// Canonical re-encode: decode(enc) must be a fixed point even when
		// the input listed cells out of order or with duplicate offsets.
		enc := EncodeChunk(c)
		c2, err := DecodeChunk(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		enc2 := EncodeChunk(c2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point: %d vs %d bytes", len(enc), len(enc2))
		}
		if got, want := c.ContentHash(), HashChunkBytes(enc); got != want {
			t.Fatalf("ContentHash %#x disagrees with HashChunkBytes %#x", got, want)
		}
	})
}

// FuzzApplyDelta applies arbitrary bytes as an ACHΔ payload to a decoded
// chunk. Bad deltas must error without mutating the chunk; good ones must
// leave the hash cache consistent with the new content.
func FuzzApplyDelta(f *testing.F) {
	base := fuzzSeedChunk()
	next := fuzzSeedChunk()
	if err := next.Set(Point{1, 1}, Tuple{-7}); err != nil {
		f.Fatal(err)
	}
	next.Delete(Point{0, 0})
	delta, ok := ComputeDelta(base, next)
	if !ok {
		f.Fatal("ComputeDelta refused the seed delta")
	}
	baseEnc := EncodeChunk(base)
	f.Add(baseEnc, delta)
	f.Add(baseEnc, delta[:len(delta)/2])
	mangled := append([]byte(nil), delta...)
	mangled[len(mangled)-1] ^= 0xFF
	f.Add(baseEnc, mangled)

	f.Fuzz(func(t *testing.T, chunkBuf, deltaBuf []byte) {
		c, err := DecodeChunk(chunkBuf)
		if err != nil {
			return
		}
		before := EncodeChunk(c)
		if err := ApplyDelta(c, deltaBuf); err != nil {
			if after := EncodeChunk(c); !bytes.Equal(before, after) {
				t.Fatalf("failed ApplyDelta mutated the chunk: %d -> %d bytes", len(before), len(after))
			}
			return
		}
		if got, want := c.ContentHash(), HashChunkBytes(EncodeChunk(c)); got != want {
			t.Fatalf("post-delta ContentHash %#x disagrees with recomputed %#x", got, want)
		}
	})
}
