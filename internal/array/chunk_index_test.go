package array

import (
	"math/rand"
	"sort"
	"testing"
)

// indexSchema gives chunks enough cells (200) for interleaved and randomized
// cache-invalidation sequences.
func indexSchema() *Schema {
	return MustSchema("IX",
		[]Dimension{
			{Name: "x", Start: 0, End: 39, ChunkSize: 20},
			{Name: "y", Start: 0, End: 9, ChunkSize: 10},
		},
		[]Attribute{{Name: "v", Type: Float64}})
}

// cachesStale reports which of the two lazily-built caches are invalidated.
func cachesStale(c *Chunk) (sortedStale, bboxStale bool) {
	return c.sorted == nil, !c.bboxOK
}

// TestChunkIndexInvalidation interleaves mutations with the cached read
// paths and checks the caches go stale exactly when the cell set changes.
func TestChunkIndexInvalidation(t *testing.T) {
	c := NewChunk(indexSchema(), ChunkCoord{0, 0})
	mustSet := func(p Point, v float64) {
		t.Helper()
		if err := c.Set(p, Tuple{v}); err != nil {
			t.Fatal(err)
		}
	}
	sortedPoints := func() []Point {
		var pts []Point
		c.EachSorted(func(p Point, _ Tuple) bool {
			pts = append(pts, p.Clone())
			return true
		})
		return pts
	}

	mustSet(Point{3, 4}, 1)
	mustSet(Point{1, 2}, 2)
	mustSet(Point{19, 9}, 3)

	// Build both caches.
	pts := sortedPoints()
	if len(pts) != 3 {
		t.Fatalf("EachSorted visited %d cells, want 3", len(pts))
	}
	bb, ok := c.BoundingBox()
	if !ok || !bb.Lo.Equal(Point{1, 2}) || !bb.Hi.Equal(Point{19, 9}) {
		t.Fatalf("BoundingBox = %v, %v", bb, ok)
	}
	if s, b := cachesStale(c); s || b {
		t.Fatal("caches must be built after EachSorted+BoundingBox")
	}

	// Overwriting an occupied cell changes no offsets: caches stay valid.
	mustSet(Point{3, 4}, 42)
	if s, b := cachesStale(c); s || b {
		t.Fatal("overwrite of an occupied cell must keep the caches")
	}
	if got, _ := c.Get(Point{3, 4}); got[0] != 42 {
		t.Fatalf("overwrite lost: Get = %v", got)
	}

	// Deleting an absent cell is a no-op for the caches too.
	if c.Delete(Point{0, 0}) {
		t.Fatal("Delete of empty cell reported occupancy")
	}
	if s, b := cachesStale(c); s || b {
		t.Fatal("Delete of an absent cell must keep the caches")
	}

	// A new cell invalidates; the rebuilt index must include it in order.
	mustSet(Point{0, 0}, 4)
	if s, b := cachesStale(c); !s || !b {
		t.Fatal("Set of a fresh cell must invalidate both caches")
	}
	pts = sortedPoints()
	want := []Point{{0, 0}, {1, 2}, {3, 4}, {19, 9}}
	if len(pts) != len(want) {
		t.Fatalf("EachSorted visited %d cells, want %d", len(pts), len(want))
	}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Fatalf("EachSorted[%d] = %v, want %v", i, pts[i], want[i])
		}
	}

	// A real deletion invalidates, and the bounding box shrinks.
	if !c.Delete(Point{19, 9}) {
		t.Fatal("Delete of occupied cell reported empty")
	}
	if s, b := cachesStale(c); !s || !b {
		t.Fatal("Delete of an occupied cell must invalidate both caches")
	}
	bb, ok = c.BoundingBox()
	if !ok || !bb.Lo.Equal(Point{0, 0}) || !bb.Hi.Equal(Point{3, 4}) {
		t.Fatalf("BoundingBox after delete = %v, %v", bb, ok)
	}
}

// TestChunkIndexRandomOps drives a chunk and a naive reference map through
// the same random Set/Delete sequence, comparing the cached read paths
// against answers recomputed from scratch after every step.
func TestChunkIndexRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewChunk(indexSchema(), ChunkCoord{0, 0})
	type key [2]int64
	ref := make(map[key]float64)

	check := func(step int) {
		t.Helper()
		// Reference answer: offsets in row-major order = points in
		// lexicographic order for this schema.
		var keys []key
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		i := 0
		c.EachSorted(func(p Point, tup Tuple) bool {
			if i >= len(keys) {
				t.Fatalf("step %d: EachSorted visited more than %d cells", step, len(keys))
			}
			k := key{p[0], p[1]}
			if k != keys[i] {
				t.Fatalf("step %d: EachSorted[%d] = %v, want %v", step, i, k, keys[i])
			}
			if tup[0] != ref[k] {
				t.Fatalf("step %d: cell %v = %v, want %v", step, k, tup[0], ref[k])
			}
			i++
			return true
		})
		if i != len(keys) {
			t.Fatalf("step %d: EachSorted visited %d cells, want %d", step, i, len(keys))
		}

		bb, ok := c.BoundingBox()
		if ok != (len(ref) > 0) {
			t.Fatalf("step %d: BoundingBox ok = %v with %d cells", step, ok, len(ref))
		}
		if ok {
			lo := Point{int64(1 << 40), int64(1 << 40)}
			hi := Point{int64(-1 << 40), int64(-1 << 40)}
			for k := range ref {
				for d := 0; d < 2; d++ {
					if k[d] < lo[d] {
						lo[d] = k[d]
					}
					if k[d] > hi[d] {
						hi[d] = k[d]
					}
				}
			}
			if !bb.Lo.Equal(lo) || !bb.Hi.Equal(hi) {
				t.Fatalf("step %d: BoundingBox = [%v,%v], want [%v,%v]", step, bb.Lo, bb.Hi, lo, hi)
			}
		}
	}

	for step := 0; step < 400; step++ {
		p := Point{rng.Int63n(20), rng.Int63n(10)}
		switch rng.Intn(4) {
		case 0, 1: // Set dominates so the chunk actually fills up.
			v := float64(step)
			if err := c.Set(p, Tuple{v}); err != nil {
				t.Fatal(err)
			}
			ref[key{p[0], p[1]}] = v
		case 2:
			got := c.Delete(p)
			_, had := ref[key{p[0], p[1]}]
			if got != had {
				t.Fatalf("step %d: Delete(%v) = %v, reference %v", step, p, got, had)
			}
			delete(ref, key{p[0], p[1]})
		case 3: // Read-only step: exercise cache reuse between mutations.
		}
		if step%7 == 0 || step > 380 {
			check(step)
		}
	}
	check(400)
}

// TestChunkAbsorbFrom proves the move-semantics merge: the destination gets
// every cell, and the drained source can be mutated or dropped without
// aliasing the destination's tuples.
func TestChunkAbsorbFrom(t *testing.T) {
	s := indexSchema()
	dst := NewChunk(s, ChunkCoord{0, 0})
	src := NewChunk(s, ChunkCoord{0, 0})
	if err := dst.Set(Point{1, 1}, Tuple{10}); err != nil {
		t.Fatal(err)
	}
	if err := src.Set(Point{1, 1}, Tuple{20}); err != nil {
		t.Fatal(err)
	}
	if err := src.Set(Point{5, 5}, Tuple{30}); err != nil {
		t.Fatal(err)
	}

	if err := dst.AbsorbFrom(src); err != nil {
		t.Fatal(err)
	}
	if src.NumCells() != 0 {
		t.Fatalf("source holds %d cells after absorb, want 0", src.NumCells())
	}
	// The drained source is safe to reuse or drop: writing through it must
	// not reach tuples now owned by the destination.
	if err := src.Set(Point{5, 5}, Tuple{-1}); err != nil {
		t.Fatal(err)
	}
	if got, ok := dst.Get(Point{5, 5}); !ok || got[0] != 30 {
		t.Fatalf("dst cell (5,5) = %v, %v after source reuse, want 30", got, ok)
	}
	if got, ok := dst.Get(Point{1, 1}); !ok || got[0] != 20 {
		t.Fatalf("dst cell (1,1) = %v, %v, want absorbed 20", got, ok)
	}
	if dst.NumCells() != 2 {
		t.Fatalf("dst holds %d cells, want 2", dst.NumCells())
	}

	// Coordinate mismatch is rejected, like MergeFrom.
	other := NewChunk(s, ChunkCoord{1, 0})
	if err := dst.AbsorbFrom(other); err == nil {
		t.Fatal("absorbing a chunk with a different coordinate must fail")
	}

	// Empty source: no-op that must not invalidate the caches.
	dst.EachSorted(func(Point, Tuple) bool { return true })
	if _, ok := dst.BoundingBox(); !ok {
		t.Fatal("BoundingBox on populated chunk")
	}
	empty := NewChunk(s, ChunkCoord{0, 0})
	if err := dst.AbsorbFrom(empty); err != nil {
		t.Fatal(err)
	}
	if sStale, bStale := cachesStale(dst); sStale || bStale {
		t.Fatal("absorbing an empty chunk must keep the caches")
	}
}

// TestChunkEachSortedIntoMatches pins the allocation-free iteration variant
// to the public EachSorted order and contents.
func TestChunkEachSortedIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewChunk(indexSchema(), ChunkCoord{1, 0})
	for i := 0; i < 120; i++ {
		p := Point{20 + rng.Int63n(20), rng.Int63n(10)}
		if err := c.Set(p, Tuple{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var want []Point
	var wantV []float64
	c.EachSorted(func(p Point, tup Tuple) bool {
		want = append(want, p.Clone())
		wantV = append(wantV, tup[0])
		return true
	})
	buf := make(Point, 2)
	i := 0
	c.EachSortedInto(buf, func(p Point, tup Tuple) bool {
		if &p[0] != &buf[0] {
			t.Fatal("EachSortedInto must yield the caller's buffer")
		}
		if !p.Equal(want[i]) || tup[0] != wantV[i] {
			t.Fatalf("EachSortedInto[%d] = %v/%v, want %v/%v", i, p, tup[0], want[i], wantV[i])
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("EachSortedInto visited %d cells, want %d", i, len(want))
	}
	// Early termination is honored.
	n := 0
	c.EachSortedInto(buf, func(Point, Tuple) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("EachSortedInto visited %d cells after stop, want 5", n)
	}
}
