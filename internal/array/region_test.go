package array

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := NewRegion(Point{1, 1}, Point{2, 3})
	if r.Empty() {
		t.Fatal("region should be non-empty")
	}
	if got := r.Size(); got != 6 {
		t.Errorf("Size() = %d, want 6", got)
	}
	if !r.Contains(Point{2, 2}) || r.Contains(Point{3, 2}) {
		t.Error("Contains misbehaves")
	}
	if (Region{Lo: Point{2}, Hi: Point{1}}).Size() != 0 {
		t.Error("empty region must have size 0")
	}
	if !(Region{}).Empty() {
		t.Error("zero region must be empty")
	}
}

func TestRegionIntersectUnion(t *testing.T) {
	a := NewRegion(Point{1, 1}, Point{4, 4})
	b := NewRegion(Point{3, 0}, Point{6, 2})
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("regions must intersect")
	}
	if !got.Lo.Equal(Point{3, 1}) || !got.Hi.Equal(Point{4, 2}) {
		t.Errorf("Intersect = %v", got)
	}
	u := a.Union(b)
	if !u.Lo.Equal(Point{1, 0}) || !u.Hi.Equal(Point{6, 4}) {
		t.Errorf("Union = %v", u)
	}
	if _, ok := a.Intersect(NewRegion(Point{10, 10}, Point{11, 11})); ok {
		t.Error("disjoint regions must not intersect")
	}
	if _, ok := a.Intersect(NewRegion(Point{1}, Point{2})); ok {
		t.Error("dimension mismatch must not intersect")
	}
}

func TestRegionDilate(t *testing.T) {
	r := NewRegion(Point{5, 5}, Point{6, 6})
	d := r.Dilate([]int64{-1, -2}, []int64{1, 2})
	if !d.Lo.Equal(Point{4, 3}) || !d.Hi.Equal(Point{7, 8}) {
		t.Errorf("Dilate = %v", d)
	}
}

func TestRegionProject(t *testing.T) {
	r := NewRegion(Point{1, 2, 3}, Point{4, 5, 6})
	p := r.Project([]int{2, 0})
	if !p.Lo.Equal(Point{3, 1}) || !p.Hi.Equal(Point{6, 4}) {
		t.Errorf("Project = %v", p)
	}
}

func TestRegionEach(t *testing.T) {
	r := NewRegion(Point{1, 1}, Point{2, 2})
	var got []Point
	r.Each(func(p Point) bool {
		got = append(got, p.Clone())
		return true
	})
	want := []Point{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	if len(got) != len(want) {
		t.Fatalf("Each visited %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("cell %d = %v, want %v (row-major order)", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	r.Each(func(Point) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
	// Empty region visits nothing.
	(Region{Lo: Point{2}, Hi: Point{1}}).Each(func(Point) bool {
		t.Error("empty region must not visit cells")
		return false
	})
}

// randomRegion draws a small random region in up to 3 dims.
func randomRegion(rng *rand.Rand, dims int) Region {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for i := 0; i < dims; i++ {
		lo[i] = int64(rng.Intn(20) - 10)
		hi[i] = lo[i] + int64(rng.Intn(8)-2) // sometimes empty
	}
	return Region{Lo: lo, Hi: hi}
}

func TestRegionIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(3)
		a, b := randomRegion(rng, dims), randomRegion(rng, dims)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		// Commutativity.
		if okAB != okBA {
			return false
		}
		if okAB && (!ab.Lo.Equal(ba.Lo) || !ab.Hi.Equal(ba.Hi)) {
			return false
		}
		// Membership: p in a∩b iff p in a and p in b, checked on samples.
		for k := 0; k < 10; k++ {
			p := make(Point, dims)
			for i := range p {
				p[i] = int64(r.Intn(24) - 12)
			}
			in := a.Contains(p) && b.Contains(p)
			inAB := okAB && ab.Contains(p)
			if in != inAB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegionDilateProperty(t *testing.T) {
	// q is in dilate(r) iff q-off is in r for some off in the box.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(3)
		r := randomRegion(rng, dims)
		if r.Empty() {
			return true
		}
		offLo := make([]int64, dims)
		offHi := make([]int64, dims)
		for i := 0; i < dims; i++ {
			offLo[i] = int64(rng.Intn(5) - 3)
			offHi[i] = offLo[i] + int64(rng.Intn(4))
		}
		d := r.Dilate(offLo, offHi)
		// Every p+off must land in d.
		ok := true
		r.Each(func(p Point) bool {
			for i := 0; i < dims && ok; i++ {
				if !d.Contains(p.Add(offLo)) || !d.Contains(p.Add(offHi)) {
					ok = false
				}
			}
			return ok
		})
		// Corners of d must be reachable.
		if ok {
			if !d.Lo.Equal(r.Lo.Add(offLo)) || !d.Hi.Equal(r.Hi.Add(offHi)) {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegionSizeMatchesEach(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRegion(rng, 1+rng.Intn(3))
		n := int64(0)
		r.Each(func(Point) bool { n++; return true })
		return n == r.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPointCompare(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{1, 2}, Point{1, 2}, 0},
		{Point{1, 2}, Point{1, 3}, -1},
		{Point{2, 0}, Point{1, 9}, 1},
		{Point{1}, Point{1, 0}, -1},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestChunkKeyRoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		cc := ChunkCoord{a, b, c}
		return cc.Key().Coord().Equal(cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkKeyOrderIsRowMajor(t *testing.T) {
	// For non-negative coordinates, key order equals lexicographic order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := ChunkCoord{int64(rng.Intn(100)), int64(rng.Intn(100))}
		b := ChunkCoord{int64(rng.Intn(100)), int64(rng.Intn(100))}
		cmp := Point(a).Compare(Point(b))
		ka, kb := a.Key(), b.Key()
		switch {
		case cmp < 0:
			return ka < kb
		case cmp > 0:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
