package array

import (
	"fmt"
	"sort"
)

// Chunk is the unit of storage, I/O, and processing: a group of adjacent
// cells covered by one regular chunk slot of the schema. Cells are stored
// sparsely, keyed by their local row-major offset inside the chunk region.
//
// A Chunk is not safe for concurrent mutation; the cluster layer serializes
// writes per chunk.
type Chunk struct {
	coord  ChunkCoord
	region Region
	nattrs int
	cells  map[int64]Tuple
}

// NewChunk creates an empty chunk covering the slot cc of schema s.
func NewChunk(s *Schema, cc ChunkCoord) *Chunk {
	return &Chunk{
		coord:  cc.Clone(),
		region: s.ChunkRegion(cc),
		nattrs: s.NumAttrs(),
		cells:  make(map[int64]Tuple),
	}
}

// Coord returns the chunk's coordinate.
func (c *Chunk) Coord() ChunkCoord { return c.coord }

// Key returns the chunk's map key.
func (c *Chunk) Key() ChunkKey { return c.coord.Key() }

// Region returns the cell region covered by the chunk.
func (c *Chunk) Region() Region { return c.region }

// NumCells returns the number of non-empty cells.
func (c *Chunk) NumCells() int { return len(c.cells) }

// NumAttrs returns the attributes per cell.
func (c *Chunk) NumAttrs() int { return c.nattrs }

// SizeBytes returns the approximate serialized size of the chunk: the B_q
// parameter of the paper's cost model. Each cell carries its local offset
// (8 bytes) plus 8 bytes per attribute.
func (c *Chunk) SizeBytes() int64 {
	return int64(len(c.cells)) * int64(8+8*c.nattrs)
}

// localOffset converts a global point inside the chunk region to a local
// row-major offset.
func (c *Chunk) localOffset(p Point) int64 {
	off := int64(0)
	for i := range p {
		span := c.region.Hi[i] - c.region.Lo[i] + 1
		off = off*span + (p[i] - c.region.Lo[i])
	}
	return off
}

// globalPoint converts a local offset back to a global point.
func (c *Chunk) globalPoint(off int64) Point {
	d := len(c.region.Lo)
	p := make(Point, d)
	for i := d - 1; i >= 0; i-- {
		span := c.region.Hi[i] - c.region.Lo[i] + 1
		p[i] = c.region.Lo[i] + off%span
		off /= span
	}
	return p
}

// Set writes the tuple at point p, which must lie inside the chunk region
// and carry exactly the schema's attribute count. The tuple is copied.
func (c *Chunk) Set(p Point, t Tuple) error {
	if !c.region.Contains(p) {
		return fmt.Errorf("array: point %v outside chunk region %v", p, c.region)
	}
	if len(t) != c.nattrs {
		return fmt.Errorf("array: tuple has %d attrs, chunk needs %d", len(t), c.nattrs)
	}
	c.cells[c.localOffset(p)] = t.Clone()
	return nil
}

// Get returns the tuple at point p, or ok=false for an empty cell.
func (c *Chunk) Get(p Point) (t Tuple, ok bool) {
	if !c.region.Contains(p) {
		return nil, false
	}
	t, ok = c.cells[c.localOffset(p)]
	return t, ok
}

// Delete empties the cell at p, reporting whether it was non-empty.
func (c *Chunk) Delete(p Point) bool {
	if !c.region.Contains(p) {
		return false
	}
	off := c.localOffset(p)
	if _, ok := c.cells[off]; !ok {
		return false
	}
	delete(c.cells, off)
	return true
}

// Each calls fn for every non-empty cell. The iteration order is
// unspecified; use EachSorted when determinism matters. The point and tuple
// passed to fn are owned by the chunk; clone them if retained or mutated.
func (c *Chunk) Each(fn func(p Point, t Tuple) bool) {
	for off, t := range c.cells {
		if !fn(c.globalPoint(off), t) {
			return
		}
	}
}

// EachSorted calls fn for every non-empty cell in row-major order.
func (c *Chunk) EachSorted(fn func(p Point, t Tuple) bool) {
	offs := make([]int64, 0, len(c.cells))
	for off := range c.cells {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		if !fn(c.globalPoint(off), c.cells[off]) {
			return
		}
	}
}

// Clone returns a deep copy of the chunk.
func (c *Chunk) Clone() *Chunk {
	out := &Chunk{
		coord:  c.coord.Clone(),
		region: c.region.Clone(),
		nattrs: c.nattrs,
		cells:  make(map[int64]Tuple, len(c.cells)),
	}
	for off, t := range c.cells {
		out.cells[off] = t.Clone()
	}
	return out
}

// MergeFrom copies every non-empty cell of src into c, overwriting
// collisions. Both chunks must cover the same region.
func (c *Chunk) MergeFrom(src *Chunk) error {
	if !c.coord.Equal(src.coord) {
		return fmt.Errorf("array: merging chunk %v into %v", src.coord, c.coord)
	}
	for off, t := range src.cells {
		c.cells[off] = t.Clone()
	}
	return nil
}

// BoundingBox returns the tight bounding region of the non-empty cells and
// ok=false when the chunk is empty. Used for cell-granularity join pruning.
func (c *Chunk) BoundingBox() (Region, bool) {
	if len(c.cells) == 0 {
		return Region{}, false
	}
	var bb Region
	first := true
	for off := range c.cells {
		p := c.globalPoint(off)
		if first {
			bb = Region{Lo: p.Clone(), Hi: p.Clone()}
			first = false
			continue
		}
		for i := range p {
			if p[i] < bb.Lo[i] {
				bb.Lo[i] = p[i]
			}
			if p[i] > bb.Hi[i] {
				bb.Hi[i] = p[i]
			}
		}
	}
	return bb, true
}
