package array

import (
	"fmt"
	"sort"
)

// Chunk is the unit of storage, I/O, and processing: a group of adjacent
// cells covered by one regular chunk slot of the schema. Cells are stored
// sparsely, keyed by their local row-major offset inside the chunk region.
//
// A Chunk maintains two lazily built caches derived from the occupied
// offset set: a sorted-offset index (backing EachSorted and EachSortedInto)
// and the tight bounding box of the occupied cells (backing BoundingBox).
// Both are invalidated by any mutation that changes which cells are
// occupied and rebuilt on next use, so repeated ordered iteration and
// pruning — the join kernel's access pattern — pay the sort and the scan
// once, not per call.
//
// A Chunk is not safe for concurrent use: even read-side iteration may
// build the caches. The cluster layer hands each worker its own copy.
type Chunk struct {
	coord  ChunkCoord
	region Region
	nattrs int
	cells  map[int64]Tuple

	// sorted is the row-major offset index; nil when stale.
	sorted []int64
	// bbox is the cached bounding box of the occupied cells; valid only
	// while bboxOK is set and the chunk is non-empty.
	bbox   Region
	bboxOK bool
	// hash caches ContentHash; valid only while hashOK is set. Unlike the
	// occupancy caches above, the hash also goes stale when an occupied
	// cell is overwritten with a new value.
	hash   uint64
	hashOK bool
}

// NewChunk creates an empty chunk covering the slot cc of schema s.
func NewChunk(s *Schema, cc ChunkCoord) *Chunk {
	return &Chunk{
		coord:  cc.Clone(),
		region: s.ChunkRegion(cc),
		nattrs: s.NumAttrs(),
		cells:  make(map[int64]Tuple),
	}
}

// Coord returns the chunk's coordinate.
func (c *Chunk) Coord() ChunkCoord { return c.coord }

// Key returns the chunk's map key.
func (c *Chunk) Key() ChunkKey { return c.coord.Key() }

// Region returns the cell region covered by the chunk.
func (c *Chunk) Region() Region { return c.region }

// NumCells returns the number of non-empty cells.
func (c *Chunk) NumCells() int { return len(c.cells) }

// NumAttrs returns the attributes per cell.
func (c *Chunk) NumAttrs() int { return c.nattrs }

// SizeBytes returns the approximate serialized size of the chunk: the B_q
// parameter of the paper's cost model. Each cell carries its local offset
// (8 bytes) plus 8 bytes per attribute.
func (c *Chunk) SizeBytes() int64 {
	return int64(len(c.cells)) * int64(8+8*c.nattrs)
}

// EncodedSize returns the exact length of EncodeChunk's output without
// encoding: the ACH1 header plus the cell payload.
func (c *Chunk) EncodedSize() int64 {
	return int64(4+4+8*len(c.coord)*3+4+8) + c.SizeBytes()
}

// invalidate drops the derived caches. Called by every mutation that
// changes the set of occupied offsets; overwriting an occupied cell keeps
// the occupancy caches valid (the content hash is dropped separately,
// since any value change alters the canonical encoding).
func (c *Chunk) invalidate() {
	c.sorted = nil
	c.bboxOK = false
	c.hashOK = false
}

// index returns the sorted-offset index, rebuilding it if stale. The
// returned slice is owned by the chunk and must not be mutated; callers
// iterating it see a snapshot even if the chunk is mutated mid-iteration
// (matching the historical EachSorted semantics).
func (c *Chunk) index() []int64 {
	if c.sorted == nil {
		offs := make([]int64, 0, len(c.cells))
		for off := range c.cells {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		c.sorted = offs
	}
	return c.sorted
}

// localOffset converts a global point inside the chunk region to a local
// row-major offset.
func (c *Chunk) localOffset(p Point) int64 {
	off := int64(0)
	for i := range p {
		span := c.region.Hi[i] - c.region.Lo[i] + 1
		off = off*span + (p[i] - c.region.Lo[i])
	}
	return off
}

// globalPoint converts a local offset back to a global point.
func (c *Chunk) globalPoint(off int64) Point {
	p := make(Point, len(c.region.Lo))
	c.globalPointInto(off, p)
	return p
}

// globalPointInto decodes a local offset into the caller-provided point,
// which must have the chunk's dimensionality.
func (c *Chunk) globalPointInto(off int64, p Point) {
	for i := len(c.region.Lo) - 1; i >= 0; i-- {
		span := c.region.Hi[i] - c.region.Lo[i] + 1
		p[i] = c.region.Lo[i] + off%span
		off /= span
	}
}

// Set writes the tuple at point p, which must lie inside the chunk region
// and carry exactly the schema's attribute count. The tuple is copied.
func (c *Chunk) Set(p Point, t Tuple) error {
	if !c.region.Contains(p) {
		return fmt.Errorf("array: point %v outside chunk region %v", p, c.region)
	}
	if len(t) != c.nattrs {
		return fmt.Errorf("array: tuple has %d attrs, chunk needs %d", len(t), c.nattrs)
	}
	off := c.localOffset(p)
	if _, occupied := c.cells[off]; !occupied {
		c.invalidate()
	}
	// Every Set changes content (a fresh cell or a new value), so the
	// content hash goes stale even when the occupancy caches survive.
	c.hashOK = false
	c.cells[off] = t.Clone()
	return nil
}

// Get returns the tuple at point p, or ok=false for an empty cell.
func (c *Chunk) Get(p Point) (t Tuple, ok bool) {
	if !c.region.Contains(p) {
		return nil, false
	}
	t, ok = c.cells[c.localOffset(p)]
	return t, ok
}

// GetOffset returns the tuple stored at a local row-major offset. It is the
// join kernel's probe fast path: the kernel derives offsets incrementally
// from the region's strides, so the per-probe point decoding and bounds
// check of Get are skipped.
func (c *Chunk) GetOffset(off int64) (t Tuple, ok bool) {
	t, ok = c.cells[off]
	return t, ok
}

// Delete empties the cell at p, reporting whether it was non-empty.
func (c *Chunk) Delete(p Point) bool {
	if !c.region.Contains(p) {
		return false
	}
	off := c.localOffset(p)
	if _, ok := c.cells[off]; !ok {
		return false
	}
	delete(c.cells, off)
	c.invalidate()
	return true
}

// Each calls fn for every non-empty cell. The iteration order is
// unspecified; use EachSorted when determinism matters. The point and tuple
// passed to fn are owned by the chunk; clone them if retained or mutated.
func (c *Chunk) Each(fn func(p Point, t Tuple) bool) {
	for off, t := range c.cells {
		if !fn(c.globalPoint(off), t) {
			return
		}
	}
}

// EachSorted calls fn for every non-empty cell in row-major order.
func (c *Chunk) EachSorted(fn func(p Point, t Tuple) bool) {
	for _, off := range c.index() {
		if !fn(c.globalPoint(off), c.cells[off]) {
			return
		}
	}
}

// EachSortedInto is EachSorted with a caller-provided coordinate buffer:
// buf (which must have the chunk's dimensionality) is refilled and passed
// to fn for every cell, so the iteration itself allocates nothing. The
// point is valid only for the duration of the callback.
func (c *Chunk) EachSortedInto(buf Point, fn func(p Point, t Tuple) bool) {
	for _, off := range c.index() {
		c.globalPointInto(off, buf)
		if !fn(buf, c.cells[off]) {
			return
		}
	}
}

// Warm builds every lazily derived cache — the sorted-offset index, the
// bounding box, and the content hash — so subsequent reads (iteration,
// pruning, encoding) mutate nothing. A warmed chunk that is never mutated
// again is safe for concurrent readers.
func (c *Chunk) Warm() {
	c.index()
	c.BoundingBox()
	c.ContentHash()
}

// Clone returns a deep copy of the chunk. Derived caches are not copied;
// the clone rebuilds them on first use.
func (c *Chunk) Clone() *Chunk {
	out := &Chunk{
		coord:  c.coord.Clone(),
		region: c.region.Clone(),
		nattrs: c.nattrs,
		cells:  make(map[int64]Tuple, len(c.cells)),
	}
	for off, t := range c.cells {
		out.cells[off] = t.Clone()
	}
	return out
}

// MergeFrom copies every non-empty cell of src into c, overwriting
// collisions. Both chunks must cover the same region. Tuples are cloned;
// src is untouched. Use AbsorbFrom when src is a scratch chunk that will be
// discarded.
func (c *Chunk) MergeFrom(src *Chunk) error {
	if !c.coord.Equal(src.coord) {
		return fmt.Errorf("array: merging chunk %v into %v", src.coord, c.coord)
	}
	for off, t := range src.cells {
		c.cells[off] = t.Clone()
	}
	if len(src.cells) > 0 {
		c.invalidate()
	}
	return nil
}

// AbsorbFrom moves every non-empty cell of src into c, overwriting
// collisions. Both chunks must cover the same region. Unlike MergeFrom the
// tuples are moved, not cloned: c takes ownership and src is left empty, so
// a batch-local source chunk can be dropped afterwards without aliasing c's
// data.
func (c *Chunk) AbsorbFrom(src *Chunk) error {
	if !c.coord.Equal(src.coord) {
		return fmt.Errorf("array: absorbing chunk %v into %v", src.coord, c.coord)
	}
	if len(src.cells) == 0 {
		return nil
	}
	for off, t := range src.cells {
		c.cells[off] = t
	}
	clear(src.cells)
	c.invalidate()
	src.invalidate()
	return nil
}

// BoundingBox returns the tight bounding region of the non-empty cells and
// ok=false when the chunk is empty. Used for cell-granularity join pruning.
// The result is cached until the next occupancy change; the returned region
// shares the cache's storage and must be treated as read-only (clone before
// mutating or retaining across chunk mutations).
func (c *Chunk) BoundingBox() (Region, bool) {
	if len(c.cells) == 0 {
		return Region{}, false
	}
	if c.bboxOK {
		return c.bbox, true
	}
	d := len(c.region.Lo)
	bb := Region{Lo: make(Point, d), Hi: make(Point, d)}
	p := make(Point, d)
	first := true
	for off := range c.cells {
		c.globalPointInto(off, p)
		if first {
			copy(bb.Lo, p)
			copy(bb.Hi, p)
			first = false
			continue
		}
		for i := range p {
			if p[i] < bb.Lo[i] {
				bb.Lo[i] = p[i]
			}
			if p[i] > bb.Hi[i] {
				bb.Hi[i] = p[i]
			}
		}
	}
	c.bbox = bb
	c.bboxOK = true
	return c.bbox, true
}
