// Package array implements the multi-dimensional array data model used by
// the rest of the system: schemas with dimensions and attributes, sparse
// cells addressed by integer coordinates, and regular chunking.
//
// The model follows Section 2.1 of Zhao et al., "Incremental View
// Maintenance over Array Data" (SIGMOD 2017): an array is a function from
// dimension indices to attribute tuples, physically partitioned into
// regular chunks aligned with the dimensions.
package array

import (
	"errors"
	"fmt"
	"strings"
)

// AttrType enumerates the scalar types a cell attribute can take. All
// attribute values are carried as float64 in memory; the type records the
// declared logical type for schema display and serialization.
type AttrType int

const (
	// Float64 is a double-precision floating point attribute.
	Float64 AttrType = iota
	// Int64 is a signed integer attribute (stored as float64 in tuples).
	Int64
)

// String returns the AQL-style name of the attribute type.
func (t AttrType) String() string {
	switch t {
	case Float64:
		return "double"
	case Int64:
		return "int"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// Dimension describes one ordered dimension of an array: a continuous
// inclusive integer range [Start, End] partitioned into regular chunks of
// ChunkSize indices each, anchored at Start.
type Dimension struct {
	Name      string
	Start     int64
	End       int64
	ChunkSize int64
}

// Len returns the number of valid indices of the dimension.
func (d Dimension) Len() int64 { return d.End - d.Start + 1 }

// NumChunks returns how many chunks the dimension range is split into.
func (d Dimension) NumChunks() int64 {
	return (d.Len() + d.ChunkSize - 1) / d.ChunkSize
}

// Validate reports whether the dimension is well formed.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("array: dimension has empty name")
	}
	if d.End < d.Start {
		return fmt.Errorf("array: dimension %q has End %d < Start %d", d.Name, d.End, d.Start)
	}
	if d.ChunkSize <= 0 {
		return fmt.Errorf("array: dimension %q has non-positive chunk size %d", d.Name, d.ChunkSize)
	}
	return nil
}

// Attribute describes one named attribute carried by every non-empty cell.
type Attribute struct {
	Name string
	Type AttrType
}

// Schema is the full description of an array: its name, ordered dimensions,
// and attributes. A Schema is immutable once built; share it freely.
type Schema struct {
	Name  string
	Dims  []Dimension
	Attrs []Attribute
}

// NewSchema builds and validates a schema.
func NewSchema(name string, dims []Dimension, attrs []Attribute) (*Schema, error) {
	s := &Schema{Name: name, Dims: dims, Attrs: attrs}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// statically-known schemas.
func MustSchema(name string, dims []Dimension, attrs []Attribute) *Schema {
	s, err := NewSchema(name, dims, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural invariants: non-empty name, at least one
// dimension, well-formed dimensions, and unique dimension/attribute names.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("array: schema has empty name")
	}
	if len(s.Dims) == 0 {
		return fmt.Errorf("array: schema %q has no dimensions", s.Name)
	}
	seen := make(map[string]bool, len(s.Dims)+len(s.Attrs))
	for _, d := range s.Dims {
		if err := d.Validate(); err != nil {
			return err
		}
		if seen[d.Name] {
			return fmt.Errorf("array: schema %q has duplicate name %q", s.Name, d.Name)
		}
		seen[d.Name] = true
	}
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("array: schema %q has attribute with empty name", s.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("array: schema %q has duplicate name %q", s.Name, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// NumDims returns the dimensionality of the array.
func (s *Schema) NumDims() int { return len(s.Dims) }

// NumAttrs returns the number of attributes per cell.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Bounds returns the region covering the entire array domain.
func (s *Schema) Bounds() Region {
	lo := make(Point, len(s.Dims))
	hi := make(Point, len(s.Dims))
	for i, d := range s.Dims {
		lo[i] = d.Start
		hi[i] = d.End
	}
	return Region{Lo: lo, Hi: hi}
}

// Contains reports whether p is inside the array domain.
func (s *Schema) Contains(p Point) bool {
	if len(p) != len(s.Dims) {
		return false
	}
	for i, d := range s.Dims {
		if p[i] < d.Start || p[i] > d.End {
			return false
		}
	}
	return true
}

// ChunkShape returns the per-dimension chunk sizes.
func (s *Schema) ChunkShape() []int64 {
	shape := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		shape[i] = d.ChunkSize
	}
	return shape
}

// NumChunks returns the total number of chunk slots in the domain (occupied
// or not).
func (s *Schema) NumChunks() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.NumChunks()
	}
	return n
}

// ChunkCoordOf returns the chunk coordinate (per-dimension chunk index)
// containing the cell at p. The point must be inside the domain.
func (s *Schema) ChunkCoordOf(p Point) ChunkCoord {
	cc := make(ChunkCoord, len(s.Dims))
	for i, d := range s.Dims {
		cc[i] = (p[i] - d.Start) / d.ChunkSize
	}
	return cc
}

// ChunkRegion returns the cell region covered by the chunk at coordinate cc,
// clipped to the array domain.
func (s *Schema) ChunkRegion(cc ChunkCoord) Region {
	lo := make(Point, len(s.Dims))
	hi := make(Point, len(s.Dims))
	for i, d := range s.Dims {
		lo[i] = d.Start + cc[i]*d.ChunkSize
		hi[i] = lo[i] + d.ChunkSize - 1
		if hi[i] > d.End {
			hi[i] = d.End
		}
	}
	return Region{Lo: lo, Hi: hi}
}

// ChunksOverlapping returns the chunk coordinates of every chunk slot whose
// region intersects r (r is clipped to the domain first). The result is in
// row-major order. It returns nil when the clipped region is empty.
func (s *Schema) ChunksOverlapping(r Region) []ChunkCoord {
	clipped, ok := r.Intersect(s.Bounds())
	if !ok {
		return nil
	}
	d := len(s.Dims)
	loC := make([]int64, d)
	hiC := make([]int64, d)
	total := int64(1)
	for i, dim := range s.Dims {
		loC[i] = (clipped.Lo[i] - dim.Start) / dim.ChunkSize
		hiC[i] = (clipped.Hi[i] - dim.Start) / dim.ChunkSize
		total *= hiC[i] - loC[i] + 1
	}
	out := make([]ChunkCoord, 0, total)
	cur := make([]int64, d)
	copy(cur, loC)
	for {
		cc := make(ChunkCoord, d)
		copy(cc, cur)
		out = append(out, cc)
		// Advance odometer, last dimension fastest.
		i := d - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= hiC[i] {
				break
			}
			cur[i] = loC[i]
		}
		if i < 0 {
			break
		}
	}
	return out
}

// String renders the schema in AQL-like notation, e.g.
// A<r:int,s:int>[i=1,6,2; j=1,8,2].
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('<')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Type)
	}
	b.WriteString(">[")
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s=%d,%d,%d", d.Name, d.Start, d.End, d.ChunkSize)
	}
	b.WriteByte(']')
	return b.String()
}
