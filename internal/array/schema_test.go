package array

import (
	"strings"
	"testing"
)

// paperSchema is array A from Figure 1 of the paper:
// A<r:int,s:int>[i=1,6,2; j=1,8,2].
func paperSchema() *Schema {
	return MustSchema("A",
		[]Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]Attribute{{Name: "r", Type: Int64}, {Name: "s", Type: Int64}},
	)
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name    string
		dims    []Dimension
		attrs   []Attribute
		wantErr string
	}{
		{"ok", []Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}}, nil, ""},
		{"", []Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}}, nil, "empty name"},
		{"nodims", nil, nil, "no dimensions"},
		{"badrange", []Dimension{{Name: "i", Start: 6, End: 1, ChunkSize: 2}}, nil, "End 1 < Start 6"},
		{"badchunk", []Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 0}}, nil, "chunk size"},
		{"dupdim", []Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "i", Start: 1, End: 6, ChunkSize: 2}}, nil, "duplicate"},
		{"dupattr", []Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}},
			[]Attribute{{Name: "i", Type: Int64}}, "duplicate"},
		{"emptyattr", []Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}},
			[]Attribute{{Name: "", Type: Int64}}, "empty name"},
	}
	for _, tc := range cases {
		_, err := NewSchema(tc.name, tc.dims, tc.attrs)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSchemaString(t *testing.T) {
	got := paperSchema().String()
	want := "A<r:int,s:int>[i=1,6,2; j=1,8,2]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSchemaChunkGeometry(t *testing.T) {
	s := paperSchema()
	if got := s.NumChunks(); got != 12 {
		t.Errorf("NumChunks() = %d, want 12 (3x4 grid as in Figure 1)", got)
	}
	// Cell [1,2] lives in chunk (0,0); cell [1,5] in chunk (0,2) — the paper's
	// chunk 7 created by insertion at [1,5].
	if cc := s.ChunkCoordOf(Point{1, 2}); !cc.Equal(ChunkCoord{0, 0}) {
		t.Errorf("ChunkCoordOf([1,2]) = %v, want (0,0)", cc)
	}
	if cc := s.ChunkCoordOf(Point{1, 5}); !cc.Equal(ChunkCoord{0, 2}) {
		t.Errorf("ChunkCoordOf([1,5]) = %v, want (0,2)", cc)
	}
	r := s.ChunkRegion(ChunkCoord{0, 2})
	want := Region{Lo: Point{1, 5}, Hi: Point{2, 6}}
	if !r.Lo.Equal(want.Lo) || !r.Hi.Equal(want.Hi) {
		t.Errorf("ChunkRegion((0,2)) = %v, want %v", r, want)
	}
}

func TestSchemaChunkRegionClipped(t *testing.T) {
	// Dimension of length 5 with chunk size 2: last chunk covers only 1 index.
	s := MustSchema("B", []Dimension{{Name: "x", Start: 1, End: 5, ChunkSize: 2}}, nil)
	if got := s.NumChunks(); got != 3 {
		t.Fatalf("NumChunks() = %d, want 3", got)
	}
	r := s.ChunkRegion(ChunkCoord{2})
	if r.Lo[0] != 5 || r.Hi[0] != 5 {
		t.Errorf("last chunk region = %v, want [5..5]", r)
	}
}

func TestChunksOverlapping(t *testing.T) {
	s := paperSchema()
	// The full domain covers all 12 chunk slots.
	all := s.ChunksOverlapping(s.Bounds())
	if len(all) != 12 {
		t.Fatalf("full-domain overlap = %d chunks, want 12", len(all))
	}
	// A region dilated past the domain is clipped, not an error.
	r := Region{Lo: Point{-5, -5}, Hi: Point{2, 2}}
	got := s.ChunksOverlapping(r)
	if len(got) != 1 || !got[0].Equal(ChunkCoord{0, 0}) {
		t.Errorf("overlap(%v) = %v, want [(0,0)]", r, got)
	}
	// Disjoint region yields nil.
	if got := s.ChunksOverlapping(Region{Lo: Point{100, 100}, Hi: Point{101, 101}}); got != nil {
		t.Errorf("disjoint overlap = %v, want nil", got)
	}
	// A cross-shaped neighborhood of [1,5] (L1(1) dilation) touches chunks
	// (0,1), (0,2) only: cells [1,4],[1,5],[1,6],[2,5] after clipping [0,5].
	n := Region{Lo: Point{0, 4}, Hi: Point{2, 6}}
	got = s.ChunksOverlapping(n)
	if len(got) != 2 {
		t.Errorf("neighborhood overlap = %v, want 2 chunks", got)
	}
}

func TestDimAttrIndex(t *testing.T) {
	s := paperSchema()
	if s.DimIndex("j") != 1 || s.DimIndex("zz") != -1 {
		t.Error("DimIndex lookup failed")
	}
	if s.AttrIndex("s") != 1 || s.AttrIndex("zz") != -1 {
		t.Error("AttrIndex lookup failed")
	}
	if s.NumDims() != 2 || s.NumAttrs() != 2 {
		t.Error("NumDims/NumAttrs mismatch")
	}
}

func TestSchemaContains(t *testing.T) {
	s := paperSchema()
	if !s.Contains(Point{1, 1}) || !s.Contains(Point{6, 8}) {
		t.Error("corner points must be inside")
	}
	if s.Contains(Point{0, 1}) || s.Contains(Point{1, 9}) || s.Contains(Point{1}) {
		t.Error("outside/short points must be rejected")
	}
}
