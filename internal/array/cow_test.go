package array

import (
	"sync"
	"testing"
)

func cowSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("base", []Dimension{
		{Name: "x", Start: 0, End: 15, ChunkSize: 4},
		{Name: "y", Start: 0, End: 15, ChunkSize: 4},
	}, []Attribute{{Name: "v"}})
}

func TestShallowCloneSetDoesNotMutateBase(t *testing.T) {
	s := cowSchema(t)
	base := New(s)
	if err := base.Set(Point{1, 1}, Tuple{10}); err != nil {
		t.Fatal(err)
	}
	if err := base.Set(Point{9, 9}, Tuple{20}); err != nil {
		t.Fatal(err)
	}
	base.Warm()

	cl := base.ShallowClone()
	if cl.Owned(s.ChunkCoordOf(Point{1, 1}).Key()) {
		t.Fatal("freshly cloned chunk should be shared")
	}
	if err := cl.Set(Point{1, 2}, Tuple{99}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(Point{1, 1}, Tuple{11}); err != nil {
		t.Fatal(err)
	}
	if !cl.Owned(s.ChunkCoordOf(Point{1, 1}).Key()) {
		t.Fatal("mutated chunk should be owned after Set")
	}
	// The base must be untouched.
	if tup, ok := base.Get(Point{1, 1}); !ok || tup[0] != 10 {
		t.Fatalf("base mutated through clone: got %v", tup)
	}
	if _, ok := base.Get(Point{1, 2}); ok {
		t.Fatal("base gained a cell through clone")
	}
	// The untouched chunk is still shared — same pointer.
	k2 := s.ChunkCoordOf(Point{9, 9}).Key()
	if base.ChunkByKey(k2) != cl.ChunkByKey(k2) {
		t.Fatal("untouched chunk should still be shared")
	}
	if tup, ok := cl.Get(Point{1, 1}); !ok || tup[0] != 11 {
		t.Fatalf("clone lost its write: got %v", tup)
	}
}

func TestShallowCloneDeleteAndMergeChunk(t *testing.T) {
	s := cowSchema(t)
	base := New(s)
	for _, p := range []Point{{0, 0}, {0, 1}, {8, 8}} {
		if err := base.Set(p, Tuple{1}); err != nil {
			t.Fatal(err)
		}
	}
	cl := base.ShallowClone()
	if !cl.Delete(Point{0, 0}) {
		t.Fatal("delete should succeed")
	}
	if cl.Delete(Point{3, 3}) {
		t.Fatal("deleting an empty cell should report false")
	}
	if _, ok := base.Get(Point{0, 0}); !ok {
		t.Fatal("delete leaked into base")
	}

	src := NewChunk(s, s.ChunkCoordOf(Point{8, 8}))
	if err := src.Set(Point{8, 9}, Tuple{7}); err != nil {
		t.Fatal(err)
	}
	if err := cl.MergeChunk(src); err != nil {
		t.Fatal(err)
	}
	if _, ok := base.Get(Point{8, 9}); ok {
		t.Fatal("MergeChunk leaked into base")
	}
	if tup, ok := cl.Get(Point{8, 9}); !ok || tup[0] != 7 {
		t.Fatalf("clone missing merged cell: %v", tup)
	}
}

func TestEnsureOwnedGuardsInPlaceTupleWrites(t *testing.T) {
	s := cowSchema(t)
	base := New(s)
	if err := base.Set(Point{2, 2}, Tuple{5}); err != nil {
		t.Fatal(err)
	}
	cl := base.ShallowClone()
	key := s.ChunkCoordOf(Point{2, 2}).Key()
	cl.EnsureOwned(key)
	tup, _ := cl.Get(Point{2, 2})
	tup[0] = 42 // in-place state merge, as view.MergeDelta does
	if got, _ := base.Get(Point{2, 2}); got[0] != 5 {
		t.Fatalf("in-place write reached the base: %v", got)
	}
	if got, _ := cl.Get(Point{2, 2}); got[0] != 42 {
		t.Fatalf("in-place write lost on clone: %v", got)
	}
}

// TestWarmedBaseConcurrentReaders drives the assembled-view cache's sharing
// pattern under the race detector: one warmed base, many goroutines taking
// shallow clones, iterating (which would build lazy caches on a cold chunk),
// and merging their own deltas.
func TestWarmedBaseConcurrentReaders(t *testing.T) {
	s := cowSchema(t)
	base := New(s)
	for x := int64(0); x < 16; x += 2 {
		for y := int64(0); y < 16; y += 3 {
			if err := base.Set(Point{x, y}, Tuple{float64(x + y)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	base.Warm()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := base.ShallowClone()
			n := 0
			cl.EachCell(func(p Point, tup Tuple) bool { n++; return true })
			cl.EachChunk(func(c *Chunk) bool {
				c.BoundingBox()
				c.ContentHash()
				return true
			})
			key := s.ChunkCoordOf(Point{0, 0}).Key()
			cl.EnsureOwned(key)
			if tup, ok := cl.Get(Point{0, 0}); ok {
				tup[0] += float64(g)
			}
			_ = cl.Set(Point{1, 1}, Tuple{float64(g)})
		}(g)
	}
	wg.Wait()
	if tup, _ := base.Get(Point{0, 0}); tup[0] != 0 {
		t.Fatalf("base mutated by readers: %v", tup)
	}
	if _, ok := base.Get(Point{1, 1}); ok {
		t.Fatal("base gained cells from readers")
	}
}
