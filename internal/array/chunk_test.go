package array

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkSetGetDelete(t *testing.T) {
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	if err := c.Set(Point{1, 2}, Tuple{2, 5}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(Point{1, 2})
	if !ok || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get(Point{1, 1}); ok {
		t.Error("empty cell must report ok=false")
	}
	if err := c.Set(Point{5, 5}, Tuple{0, 0}); err == nil {
		t.Error("Set outside region must fail")
	}
	if err := c.Set(Point{1, 1}, Tuple{1}); err == nil {
		t.Error("Set with wrong arity must fail")
	}
	if !c.Delete(Point{1, 2}) || c.Delete(Point{1, 2}) {
		t.Error("Delete must report prior occupancy")
	}
	if c.NumCells() != 0 {
		t.Error("chunk should be empty after delete")
	}
}

func TestChunkSetCopiesTuple(t *testing.T) {
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	tup := Tuple{1, 2}
	if err := c.Set(Point{1, 1}, tup); err != nil {
		t.Fatal(err)
	}
	tup[0] = 99
	got, _ := c.Get(Point{1, 1})
	if got[0] != 1 {
		t.Error("Set must copy the tuple, not alias it")
	}
}

func TestChunkOffsetRoundTrip(t *testing.T) {
	s := MustSchema("C",
		[]Dimension{
			{Name: "x", Start: 3, End: 20, ChunkSize: 5},
			{Name: "y", Start: -4, End: 9, ChunkSize: 4},
			{Name: "z", Start: 0, End: 6, ChunkSize: 7},
		}, nil)
	c := NewChunk(s, ChunkCoord{1, 2, 0})
	region := c.Region()
	region.Each(func(p Point) bool {
		off := c.localOffset(p)
		back := c.globalPoint(off)
		if !back.Equal(p) {
			t.Fatalf("offset round trip %v -> %d -> %v", p, off, back)
		}
		return true
	})
}

func TestChunkEachSortedOrder(t *testing.T) {
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	pts := []Point{{2, 2}, {1, 1}, {2, 1}, {1, 2}}
	for i, p := range pts {
		if err := c.Set(p, Tuple{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Point
	c.EachSorted(func(p Point, _ Tuple) bool {
		got = append(got, p.Clone())
		return true
	})
	want := []Point{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("EachSorted order = %v, want %v", got, want)
		}
	}
}

func TestChunkMergeAndClone(t *testing.T) {
	s := paperSchema()
	a := NewChunk(s, ChunkCoord{0, 0})
	b := NewChunk(s, ChunkCoord{0, 0})
	_ = a.Set(Point{1, 1}, Tuple{1, 1})
	_ = b.Set(Point{1, 1}, Tuple{9, 9}) // collision: src wins
	_ = b.Set(Point{2, 2}, Tuple{2, 2})
	cl := a.Clone()
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.NumCells() != 2 {
		t.Errorf("merged chunk has %d cells, want 2", a.NumCells())
	}
	if got, _ := a.Get(Point{1, 1}); got[0] != 9 {
		t.Errorf("merge must overwrite collisions, got %v", got)
	}
	if got, _ := cl.Get(Point{1, 1}); got[0] != 1 {
		t.Error("clone must be independent of the original")
	}
	other := NewChunk(s, ChunkCoord{0, 1})
	if err := a.MergeFrom(other); err == nil {
		t.Error("merging mismatched coordinates must fail")
	}
}

func TestChunkBoundingBox(t *testing.T) {
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	if _, ok := c.BoundingBox(); ok {
		t.Error("empty chunk has no bounding box")
	}
	_ = c.Set(Point{1, 2}, Tuple{0, 0})
	_ = c.Set(Point{2, 1}, Tuple{0, 0})
	bb, ok := c.BoundingBox()
	if !ok || !bb.Lo.Equal(Point{1, 1}) || !bb.Hi.Equal(Point{2, 2}) {
		t.Errorf("BoundingBox = %v, %v", bb, ok)
	}
}

func TestChunkSizeBytes(t *testing.T) {
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	_ = c.Set(Point{1, 1}, Tuple{1, 2})
	// 8 bytes offset + 2*8 attribute bytes.
	if got := c.SizeBytes(); got != 24 {
		t.Errorf("SizeBytes = %d, want 24", got)
	}
}

func TestChunkEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustSchema("T",
			[]Dimension{
				{Name: "x", Start: 0, End: 99, ChunkSize: 10},
				{Name: "y", Start: 0, End: 99, ChunkSize: 10},
			},
			[]Attribute{{Name: "v", Type: Float64}})
		c := NewChunk(s, ChunkCoord{int64(rng.Intn(10)), int64(rng.Intn(10))})
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			p := Point{
				c.Region().Lo[0] + int64(rng.Intn(10)),
				c.Region().Lo[1] + int64(rng.Intn(10)),
			}
			if err := c.Set(p, Tuple{rng.NormFloat64()}); err != nil {
				return false
			}
		}
		buf := EncodeChunk(c)
		back, err := DecodeChunk(buf)
		if err != nil {
			return false
		}
		if back.NumCells() != c.NumCells() || !back.Coord().Equal(c.Coord()) {
			return false
		}
		ok := true
		c.Each(func(p Point, tup Tuple) bool {
			got, found := back.Get(p)
			if !found || got[0] != tup[0] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeChunkErrors(t *testing.T) {
	if _, err := DecodeChunk([]byte{1, 2, 3}); err == nil {
		t.Error("truncated buffer must fail")
	}
	if _, err := DecodeChunk(make([]byte, 16)); err == nil {
		t.Error("bad magic must fail")
	}
	s := paperSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	_ = c.Set(Point{1, 1}, Tuple{1, 2})
	buf := EncodeChunk(c)
	if _, err := DecodeChunk(buf[:len(buf)-4]); err == nil {
		t.Error("short payload must fail")
	}
}
