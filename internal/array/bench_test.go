package array

import (
	"math/rand"
	"testing"
)

func benchChunk(b *testing.B, cells int) *Chunk {
	b.Helper()
	s := MustSchema("B",
		[]Dimension{
			{Name: "x", Start: 0, End: 99, ChunkSize: 100},
			{Name: "y", Start: 0, End: 49, ChunkSize: 50},
		},
		[]Attribute{{Name: "a", Type: Float64}, {Name: "b", Type: Float64}})
	rng := rand.New(rand.NewSource(1))
	c := NewChunk(s, ChunkCoord{0, 0})
	for i := 0; i < cells; i++ {
		_ = c.Set(Point{rng.Int63n(100), rng.Int63n(50)}, Tuple{rng.Float64(), rng.Float64()})
	}
	return c
}

func BenchmarkChunkEncode(b *testing.B) {
	c := benchChunk(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeChunk(c)
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkChunkDecode(b *testing.B) {
	buf := EncodeChunk(benchChunk(b, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeChunk(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkGet(b *testing.B) {
	c := benchChunk(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Point{int64(i) % 100, int64(i) % 50})
	}
}

func BenchmarkArraySet(b *testing.B) {
	s := MustSchema("B",
		[]Dimension{
			{Name: "x", Start: 0, End: 9999, ChunkSize: 100},
			{Name: "y", Start: 0, End: 4999, ChunkSize: 50},
		},
		[]Attribute{{Name: "v", Type: Float64}})
	a := New(s)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Set(Point{rng.Int63n(10000), rng.Int63n(5000)}, Tuple{1})
	}
}

func BenchmarkChunksOverlapping(b *testing.B) {
	s := MustSchema("B",
		[]Dimension{
			{Name: "x", Start: 0, End: 9999, ChunkSize: 100},
			{Name: "y", Start: 0, End: 4999, ChunkSize: 50},
		}, nil)
	r := NewRegion(Point{450, 220}, Point{780, 410})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.ChunksOverlapping(r); len(got) == 0 {
			b.Fatal("no overlap")
		}
	}
}
