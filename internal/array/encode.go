package array

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunk wire format (all integers big-endian):
//
//	u32  magic "ACH1"
//	u32  number of dimensions d
//	d ×  i64 chunk coordinate
//	d ×  i64 region lo
//	d ×  i64 region hi
//	u32  attributes per cell m
//	u64  number of cells n
//	n ×  (i64 local offset, m × f64 attribute values)
const chunkMagic = 0x41434831 // "ACH1"

// EncodeChunk serializes the chunk into a self-describing byte slice.
func EncodeChunk(c *Chunk) []byte {
	d := len(c.coord)
	size := 4 + 4 + 8*d*3 + 4 + 8 + len(c.cells)*(8+8*c.nattrs)
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, chunkMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(d))
	for _, v := range c.coord {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range c.region.Lo {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range c.region.Hi {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.nattrs))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(c.cells)))
	for off, t := range c.cells {
		buf = binary.BigEndian.AppendUint64(buf, uint64(off))
		for _, v := range t {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// DecodeChunk parses a chunk previously produced by EncodeChunk.
func DecodeChunk(buf []byte) (*Chunk, error) {
	r := reader{buf: buf}
	if m := r.u32(); m != chunkMagic {
		return nil, fmt.Errorf("array: bad chunk magic %#x", m)
	}
	d := int(r.u32())
	if d <= 0 || d > 64 {
		return nil, fmt.Errorf("array: implausible dimensionality %d", d)
	}
	c := &Chunk{
		coord:  make(ChunkCoord, d),
		region: Region{Lo: make(Point, d), Hi: make(Point, d)},
	}
	for i := range c.coord {
		c.coord[i] = r.i64()
	}
	for i := range c.region.Lo {
		c.region.Lo[i] = r.i64()
	}
	for i := range c.region.Hi {
		c.region.Hi[i] = r.i64()
	}
	c.nattrs = int(r.u32())
	n := int(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	if rem := len(buf) - r.pos; rem != n*(8+8*c.nattrs) {
		return nil, fmt.Errorf("array: chunk payload is %d bytes, want %d", rem, n*(8+8*c.nattrs))
	}
	c.cells = make(map[int64]Tuple, n)
	for i := 0; i < n; i++ {
		off := r.i64()
		t := make(Tuple, c.nattrs)
		for j := range t {
			t[j] = math.Float64frombits(r.u64())
		}
		c.cells[off] = t
	}
	return c, r.err
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.buf) {
		r.err = fmt.Errorf("array: truncated chunk at byte %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.err = fmt.Errorf("array: truncated chunk at byte %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }
