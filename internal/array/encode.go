package array

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunk wire format (all integers big-endian):
//
//	u32  magic "ACH1"
//	u32  number of dimensions d
//	d ×  i64 chunk coordinate
//	d ×  i64 region lo
//	d ×  i64 region hi
//	u32  attributes per cell m
//	u64  number of cells n
//	n ×  (i64 local offset, m × f64 attribute values)
//
// Cells are written in ascending local-offset order, so the encoding of a
// given cell set is canonical: equal chunks produce byte-identical
// encodings and therefore equal content hashes (see ContentHash).
const chunkMagic = 0x41434831 // "ACH1"

// maxDecodeAttrs bounds the per-cell attribute count a decoder will
// accept. Schemas carry a handful of attributes; the bound exists so a
// hostile frame cannot make the decoder allocate per-cell tuples of
// arbitrary width.
const maxDecodeAttrs = 1 << 12

// EncodeChunk serializes the chunk into a self-describing byte slice.
func EncodeChunk(c *Chunk) []byte {
	d := len(c.coord)
	size := 4 + 4 + 8*d*3 + 4 + 8 + len(c.cells)*(8+8*c.nattrs)
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, chunkMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(d))
	for _, v := range c.coord {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range c.region.Lo {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range c.region.Hi {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.nattrs))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(c.cells)))
	for _, off := range c.index() {
		t := c.cells[off]
		buf = binary.BigEndian.AppendUint64(buf, uint64(off))
		for _, v := range t {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// DecodeChunk parses a chunk previously produced by EncodeChunk.
func DecodeChunk(buf []byte) (*Chunk, error) {
	r := reader{buf: buf}
	if m := r.u32(); m != chunkMagic {
		return nil, fmt.Errorf("array: bad chunk magic %#x", m)
	}
	d := int(r.u32())
	if d <= 0 || d > 64 {
		return nil, fmt.Errorf("array: implausible dimensionality %d", d)
	}
	c := &Chunk{
		coord:  make(ChunkCoord, d),
		region: Region{Lo: make(Point, d), Hi: make(Point, d)},
	}
	for i := range c.coord {
		c.coord[i] = r.i64()
	}
	for i := range c.region.Lo {
		c.region.Lo[i] = r.i64()
	}
	for i := range c.region.Hi {
		c.region.Hi[i] = r.i64()
	}
	nattrs := r.u32()
	un := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if nattrs > maxDecodeAttrs {
		return nil, fmt.Errorf("array: implausible attribute count %d", nattrs)
	}
	c.nattrs = int(nattrs)
	// Validate the claimed cell count against the remaining payload in
	// uint64 space: a hostile count must not overflow into a plausible
	// product or pre-size a huge map.
	rem := len(buf) - r.pos
	cellSize := uint64(8 + 8*c.nattrs)
	if un > uint64(rem)/cellSize || uint64(rem) != un*cellSize {
		return nil, fmt.Errorf("array: chunk payload is %d bytes, want %d cells of %d", rem, un, cellSize)
	}
	n := int(un)
	c.cells = make(map[int64]Tuple, n)
	for i := 0; i < n; i++ {
		off := r.i64()
		t := make(Tuple, c.nattrs)
		for j := range t {
			t[j] = math.Float64frombits(r.u64())
		}
		c.cells[off] = t
	}
	return c, r.err
}

// FNV-1a 64-bit parameters: a cheap, dependency-free content hash. The
// hash keys the wire-level dedup handshake, where a collision only costs
// a verification miss (the receiver compares against its own content),
// never correctness.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashChunkBytes hashes an ACH1 encoding (FNV-1a 64). Because EncodeChunk
// is canonical, hashing stored chunk bytes and calling ContentHash on the
// decoded chunk yield the same value.
func HashChunkBytes(buf []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// ContentHash returns the FNV-1a 64 hash of the chunk's canonical ACH1
// encoding. The value is cached and recomputed only after a content
// mutation (Set, Delete, MergeFrom, AbsorbFrom).
func (c *Chunk) ContentHash() uint64 {
	if !c.hashOK {
		c.hash = HashChunkBytes(EncodeChunk(c))
		c.hashOK = true
	}
	return c.hash
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.buf) {
		r.err = fmt.Errorf("array: truncated chunk at byte %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.err = fmt.Errorf("array: truncated chunk at byte %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }
