package array

import (
	"math/rand"
	"testing"
)

// hashStale reports whether the cached content hash is invalidated.
func hashStale(c *Chunk) bool { return !c.hashOK }

// freshHash recomputes the content hash from scratch, bypassing the cache.
func freshHash(c *Chunk) uint64 { return HashChunkBytes(EncodeChunk(c)) }

// TestChunkHashInvalidation interleaves mutations with ContentHash and checks
// the cache goes stale exactly when the content changes. Unlike the occupancy
// caches of chunk_index_test.go, the hash must also go stale when an occupied
// cell is overwritten: the cell set is unchanged but the encoding is not.
func TestChunkHashInvalidation(t *testing.T) {
	c := NewChunk(indexSchema(), ChunkCoord{0, 0})
	mustSet := func(p Point, v float64) {
		t.Helper()
		if err := c.Set(p, Tuple{v}); err != nil {
			t.Fatal(err)
		}
	}

	mustSet(Point{3, 4}, 1)
	mustSet(Point{1, 2}, 2)
	mustSet(Point{19, 9}, 3)

	// Build the cache; re-reads must reuse it without going stale.
	h1 := c.ContentHash()
	if hashStale(c) {
		t.Fatal("cache must be built after ContentHash")
	}
	if got := c.ContentHash(); got != h1 {
		t.Fatalf("ContentHash changed across pure reads: %#x vs %#x", got, h1)
	}
	if got := freshHash(c); got != h1 {
		t.Fatalf("cached hash %#x disagrees with recomputed %#x", h1, got)
	}

	// Pure reads of the other cached paths must not touch the hash.
	c.EachSorted(func(Point, Tuple) bool { return true })
	if _, ok := c.BoundingBox(); !ok {
		t.Fatal("BoundingBox on populated chunk")
	}
	if hashStale(c) {
		t.Fatal("read-only paths must keep the hash cache")
	}

	// Overwriting an occupied cell keeps the occupancy caches but MUST
	// invalidate the hash: the bytes on the wire change.
	mustSet(Point{3, 4}, 42)
	if s, b := cachesStale(c); s || b {
		t.Fatal("overwrite of an occupied cell must keep the occupancy caches")
	}
	if !hashStale(c) {
		t.Fatal("overwrite of an occupied cell must invalidate the hash")
	}
	h2 := c.ContentHash()
	if h2 == h1 {
		t.Fatalf("hash unchanged after overwrite: %#x", h2)
	}
	if got := freshHash(c); got != h2 {
		t.Fatalf("cached hash %#x disagrees with recomputed %#x", h2, got)
	}

	// Deleting an absent cell changes nothing: the hash survives.
	if c.Delete(Point{0, 0}) {
		t.Fatal("Delete of empty cell reported occupancy")
	}
	if hashStale(c) {
		t.Fatal("Delete of an absent cell must keep the hash")
	}

	// A fresh cell and a real deletion both invalidate.
	mustSet(Point{0, 0}, 4)
	if !hashStale(c) {
		t.Fatal("Set of a fresh cell must invalidate the hash")
	}
	h3 := c.ContentHash()
	if h3 == h2 {
		t.Fatalf("hash unchanged after fresh Set: %#x", h3)
	}
	if !c.Delete(Point{0, 0}) {
		t.Fatal("Delete of occupied cell reported empty")
	}
	if !hashStale(c) {
		t.Fatal("Delete of an occupied cell must invalidate the hash")
	}
	if got := c.ContentHash(); got != h2 {
		t.Fatalf("Set+Delete round trip hash %#x, want %#x", got, h2)
	}
}

// TestChunkHashApplyDelta checks the delta path invalidates like direct
// mutation: after ApplyDelta the destination's hash equals the source's.
func TestChunkHashApplyDelta(t *testing.T) {
	s := indexSchema()
	old := NewChunk(s, ChunkCoord{0, 0})
	next := NewChunk(s, ChunkCoord{0, 0})
	for i := int64(0); i < 12; i++ {
		if err := old.Set(Point{i, i % 10}, Tuple{float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := next.Set(Point{i, i % 10}, Tuple{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A value change, a new cell, and a deletion relative to old.
	if err := next.Set(Point{2, 2}, Tuple{-2}); err != nil {
		t.Fatal(err)
	}
	if err := next.Set(Point{15, 3}, Tuple{99}); err != nil {
		t.Fatal(err)
	}
	if !next.Delete(Point{5, 5}) {
		t.Fatal("Delete of occupied cell reported empty")
	}

	delta, ok := ComputeDelta(old, next)
	if !ok {
		t.Fatal("ComputeDelta refused a small delta")
	}
	oldHash := old.ContentHash()
	if err := ApplyDelta(old, delta); err != nil {
		t.Fatal(err)
	}
	if !hashStale(old) {
		t.Fatal("ApplyDelta with changes must invalidate the hash")
	}
	if got, want := old.ContentHash(), next.ContentHash(); got != want {
		t.Fatalf("post-delta hash %#x, want source hash %#x", got, want)
	}
	if old.ContentHash() == oldHash {
		t.Fatal("hash unchanged by a non-empty delta")
	}
}

// TestChunkHashRandomOps drives random Set/Delete/read steps and compares the
// cached ContentHash against a hash recomputed from the canonical encoding
// after every step, so no mutation path can leave a stale cache behind.
func TestChunkHashRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewChunk(indexSchema(), ChunkCoord{0, 0})
	for step := 0; step < 400; step++ {
		p := Point{rng.Int63n(20), rng.Int63n(10)}
		switch rng.Intn(4) {
		case 0, 1:
			if err := c.Set(p, Tuple{float64(step)}); err != nil {
				t.Fatal(err)
			}
		case 2:
			c.Delete(p)
		case 3: // Read-only step: exercise cache reuse between mutations.
			c.ContentHash()
		}
		if got, want := c.ContentHash(), freshHash(c); got != want {
			t.Fatalf("step %d: cached hash %#x, recomputed %#x", step, got, want)
		}
	}
}
