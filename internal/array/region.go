package array

import "fmt"

// Region is an axis-aligned hyper-rectangle of cells with inclusive bounds.
// A Region with any Lo[i] > Hi[i] is empty; use Empty to test.
type Region struct {
	Lo Point
	Hi Point
}

// NewRegion builds a region from inclusive bounds, copying its arguments.
func NewRegion(lo, hi Point) Region {
	return Region{Lo: lo.Clone(), Hi: hi.Clone()}
}

// NumDims returns the dimensionality of the region.
func (r Region) NumDims() int { return len(r.Lo) }

// Empty reports whether the region contains no cells.
func (r Region) Empty() bool {
	if len(r.Lo) == 0 {
		return true
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return true
		}
	}
	return false
}

// Size returns the number of cell slots in the region (0 when empty).
func (r Region) Size() int64 {
	if r.Empty() {
		return 0
	}
	n := int64(1)
	for i := range r.Lo {
		n *= r.Hi[i] - r.Lo[i] + 1
	}
	return n
}

// Contains reports whether p lies inside the region.
func (r Region) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s. ok is false when the
// intersection is empty.
func (r Region) Intersect(s Region) (out Region, ok bool) {
	if len(r.Lo) != len(s.Lo) {
		return Region{}, false
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = maxI64(r.Lo[i], s.Lo[i])
		hi[i] = minI64(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Region{}, false
		}
	}
	return Region{Lo: lo, Hi: hi}, true
}

// Intersects reports whether r and s share at least one cell.
func (r Region) Intersects(s Region) bool {
	_, ok := r.Intersect(s)
	return ok
}

// Union returns the bounding box of r and s (the smallest region containing
// both). If either is empty the other is returned.
func (r Region) Union(s Region) Region {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = minI64(r.Lo[i], s.Lo[i])
		hi[i] = maxI64(r.Hi[i], s.Hi[i])
	}
	return Region{Lo: lo, Hi: hi}
}

// Dilate grows the region by the offset bounds [offLo, offHi] per dimension:
// the result contains q iff some p in r has q = p + off with
// offLo <= off <= offHi component-wise. This is the Minkowski sum of the
// region with the offset box, used to find cells reachable through a shape.
func (r Region) Dilate(offLo, offHi []int64) Region {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = r.Lo[i] + offLo[i]
		hi[i] = r.Hi[i] + offHi[i]
	}
	return Region{Lo: lo, Hi: hi}
}

// Project keeps only the listed dimensions, in the given order.
func (r Region) Project(dims []int) Region {
	lo := make(Point, len(dims))
	hi := make(Point, len(dims))
	for i, d := range dims {
		lo[i] = r.Lo[d]
		hi[i] = r.Hi[d]
	}
	return Region{Lo: lo, Hi: hi}
}

// Clone returns a deep copy of the region.
func (r Region) Clone() Region {
	return Region{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Each calls fn for every cell coordinate in the region in row-major order,
// reusing a single Point buffer across calls; clone it if retained. It stops
// early if fn returns false.
func (r Region) Each(fn func(p Point) bool) {
	if r.Empty() {
		return
	}
	d := len(r.Lo)
	cur := r.Lo.Clone()
	for {
		if !fn(cur) {
			return
		}
		i := d - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= r.Hi[i] {
				break
			}
			cur[i] = r.Lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// String renders the region as [lo..hi] per dimension.
func (r Region) String() string {
	if r.Empty() {
		return "<empty>"
	}
	s := "["
	for i := range r.Lo {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d..%d", r.Lo[i], r.Hi[i])
	}
	return s + "]"
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
