package array

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Point is a cell coordinate: one integer index per dimension.
type Point []int64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same coordinate.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + off component-wise.
func (p Point) Add(off []int64) Point {
	q := make(Point, len(p))
	for i := range p {
		q[i] = p[i] + off[i]
	}
	return q
}

// Compare orders points lexicographically, returning -1, 0 or 1.
func (p Point) Compare(q Point) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		switch {
		case p[i] < q[i]:
			return -1
		case p[i] > q[i]:
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	}
	return 0
}

// String renders the point as [i1, i2, ...].
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// Tuple holds the attribute values of one non-empty cell, in schema
// attribute order. Integer attributes are carried as float64.
type Tuple []float64

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// ChunkCoord identifies a chunk slot: one chunk index per dimension.
type ChunkCoord []int64

// Clone returns a copy of cc.
func (cc ChunkCoord) Clone() ChunkCoord {
	dd := make(ChunkCoord, len(cc))
	copy(dd, cc)
	return dd
}

// Equal reports whether two chunk coordinates are identical.
func (cc ChunkCoord) Equal(dd ChunkCoord) bool {
	return Point(cc).Equal(Point(dd))
}

// Key returns a compact map key uniquely identifying the chunk coordinate
// within one array. The encoding is 8 bytes per dimension, big-endian, so
// keys of equal dimensionality also sort in row-major order.
func (cc ChunkCoord) Key() ChunkKey {
	buf := make([]byte, 8*len(cc))
	for i, v := range cc {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return ChunkKey(buf)
}

// String renders the chunk coordinate as (c1, c2, ...).
func (cc ChunkCoord) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range cc {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// ChunkKey is the map-key form of a ChunkCoord, produced by ChunkCoord.Key.
type ChunkKey string

// Coord decodes the key back into a chunk coordinate.
func (k ChunkKey) Coord() ChunkCoord {
	cc := make(ChunkCoord, len(k)/8)
	for i := range cc {
		cc[i] = int64(binary.BigEndian.Uint64([]byte(k[i*8:])))
	}
	return cc
}

// String renders the decoded coordinate, for diagnostics.
func (k ChunkKey) String() string { return k.Coord().String() }
