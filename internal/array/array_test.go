package array

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1Array builds array A with the 6 original non-empty cells of
// Figure 1 (a) of the paper.
func figure1Array() *Array {
	a := New(paperSchema())
	cells := []struct {
		p Point
		t Tuple
	}{
		{Point{1, 2}, Tuple{2, 5}},
		{Point{1, 3}, Tuple{6, 3}},
		{Point{3, 4}, Tuple{2, 9}},
		{Point{4, 1}, Tuple{2, 1}},
		{Point{5, 7}, Tuple{4, 8}},
		{Point{6, 5}, Tuple{4, 3}},
	}
	for _, c := range cells {
		if err := a.Set(c.p, c.t); err != nil {
			panic(err)
		}
	}
	return a
}

func TestArrayFigure1Occupancy(t *testing.T) {
	a := figure1Array()
	if got := a.NumCells(); got != 6 {
		t.Errorf("NumCells = %d, want 6", got)
	}
	// Figure 1 (a): only 6 of the 12 chunk slots contain data.
	if got := a.NumChunks(); got != 6 {
		t.Errorf("NumChunks = %d, want 6", got)
	}
	got, ok := a.Get(Point{1, 2})
	if !ok || got[0] != 2 || got[1] != 5 {
		t.Errorf("A[1,2] = %v, %v, want <2,5>", got, ok)
	}
}

func TestArraySetGetDelete(t *testing.T) {
	a := New(paperSchema())
	if err := a.Set(Point{0, 0}, Tuple{1, 1}); err == nil {
		t.Error("Set outside domain must fail")
	}
	if _, ok := a.Get(Point{0, 0}); ok {
		t.Error("Get outside domain must be empty")
	}
	if a.Delete(Point{0, 0}) || a.Delete(Point{1, 1}) {
		t.Error("deleting absent cells must report false")
	}
	if err := a.Set(Point{1, 1}, Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() != 1 {
		t.Error("chunk should be materialized on first Set")
	}
	if !a.Delete(Point{1, 1}) {
		t.Error("Delete must succeed")
	}
	if a.NumChunks() != 0 {
		t.Error("empty chunk should be dropped")
	}
}

func TestArrayEachCellDeterministic(t *testing.T) {
	a := figure1Array()
	var first, second []Point
	a.EachCell(func(p Point, _ Tuple) bool {
		first = append(first, p.Clone())
		return true
	})
	a.EachCell(func(p Point, _ Tuple) bool {
		second = append(second, p.Clone())
		return true
	})
	if len(first) != 6 || len(second) != 6 {
		t.Fatalf("EachCell visited %d/%d cells, want 6", len(first), len(second))
	}
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatal("EachCell must be deterministic across runs")
		}
	}
}

func TestArrayCloneEqual(t *testing.T) {
	a := figure1Array()
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	_ = b.Set(Point{1, 1}, Tuple{7, 7})
	if a.Equal(b) {
		t.Error("Equal must detect extra cells")
	}
	c := a.Clone()
	_ = c.Set(Point{1, 2}, Tuple{2, 6})
	if a.Equal(c) {
		t.Error("Equal must detect changed tuples")
	}
}

func TestArrayMergeChunk(t *testing.T) {
	a := figure1Array()
	s := a.Schema()
	delta := NewChunk(s, ChunkCoord{0, 0})
	_ = delta.Set(Point{2, 1}, Tuple{1, 4})
	if err := a.MergeChunk(delta); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get(Point{2, 1}); !ok || got[0] != 1 {
		t.Errorf("merged cell = %v, %v", got, ok)
	}
	// Merging into an unoccupied slot creates the chunk.
	fresh := NewChunk(s, ChunkCoord{2, 3})
	_ = fresh.Set(Point{5, 8}, Tuple{3, 3})
	if err := a.MergeChunk(fresh); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get(Point{5, 8}); !ok {
		t.Error("merge into fresh slot lost the cell")
	}
	// The fresh chunk must have been copied, not aliased.
	_ = fresh.Set(Point{6, 8}, Tuple{1, 1})
	if _, ok := a.Get(Point{6, 8}); ok {
		t.Error("MergeChunk must copy chunks, not alias them")
	}
}

func TestArrayChunkKeysSorted(t *testing.T) {
	a := figure1Array()
	keys := a.ChunkKeys()
	for i := 1; i < len(keys); i++ {
		if !(keys[i-1] < keys[i]) {
			t.Fatal("ChunkKeys must be sorted")
		}
	}
}

// Property: Set then Get round-trips through chunking for random points.
func TestArraySetGetProperty(t *testing.T) {
	s := MustSchema("P",
		[]Dimension{
			{Name: "x", Start: -50, End: 49, ChunkSize: 7},
			{Name: "y", Start: 0, End: 99, ChunkSize: 13},
		},
		[]Attribute{{Name: "v", Type: Float64}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(s)
		ref := make(map[string]float64)
		for i := 0; i < 200; i++ {
			p := Point{int64(rng.Intn(100) - 50), int64(rng.Intn(100))}
			v := rng.NormFloat64()
			if err := a.Set(p, Tuple{v}); err != nil {
				return false
			}
			ref[p.String()] = v
		}
		if a.NumCells() != len(ref) {
			return false
		}
		for i := 0; i < 200; i++ {
			p := Point{int64(rng.Intn(100) - 50), int64(rng.Intn(100))}
			want, exists := ref[p.String()]
			got, ok := a.Get(p)
			if ok != exists {
				return false
			}
			if ok && got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestArraySizeBytes(t *testing.T) {
	a := figure1Array()
	// 6 cells x (8 + 16) bytes.
	if got := a.SizeBytes(); got != 6*24 {
		t.Errorf("SizeBytes = %d, want %d", got, 6*24)
	}
}
