package array

import (
	"fmt"
	"sort"
)

// Array is an in-memory sparse multi-dimensional array: a schema plus the
// set of occupied chunks. It is the logical representation; the distributed
// system stores the same chunks scattered across node stores.
type Array struct {
	schema *Schema
	chunks map[ChunkKey]*Chunk
	// borrowed marks chunks shared with a base array by ShallowClone.
	// Mutating methods clone a borrowed chunk before touching it
	// (copy-on-write), so the base is never modified through the clone. Nil
	// for arrays that own every chunk, which keeps the ownership check a
	// nil-map lookup on the hot paths.
	borrowed map[ChunkKey]bool
}

// New creates an empty array with the given schema.
func New(s *Schema) *Array {
	return &Array{schema: s, chunks: make(map[ChunkKey]*Chunk)}
}

// Schema returns the array's schema.
func (a *Array) Schema() *Schema { return a.schema }

// NumChunks returns the number of occupied chunks.
func (a *Array) NumChunks() int { return len(a.chunks) }

// NumCells returns the total number of non-empty cells.
func (a *Array) NumCells() int {
	n := 0
	for _, c := range a.chunks {
		n += c.NumCells()
	}
	return n
}

// Set writes tuple t at point p, materializing the containing chunk on
// first touch.
func (a *Array) Set(p Point, t Tuple) error {
	if !a.schema.Contains(p) {
		return fmt.Errorf("array: point %v outside domain of %s", p, a.schema.Name)
	}
	cc := a.schema.ChunkCoordOf(p)
	key := cc.Key()
	c, ok := a.chunks[key]
	if !ok {
		c = NewChunk(a.schema, cc)
		a.chunks[key] = c
	} else {
		c = a.ensureOwned(key)
	}
	return c.Set(p, t)
}

// Get returns the tuple at p, or ok=false for an empty cell.
func (a *Array) Get(p Point) (Tuple, bool) {
	if !a.schema.Contains(p) {
		return nil, false
	}
	c, ok := a.chunks[a.schema.ChunkCoordOf(p).Key()]
	if !ok {
		return nil, false
	}
	return c.Get(p)
}

// Delete empties the cell at p, dropping the chunk if it becomes empty.
func (a *Array) Delete(p Point) bool {
	if !a.schema.Contains(p) {
		return false
	}
	key := a.schema.ChunkCoordOf(p).Key()
	c, ok := a.chunks[key]
	if !ok {
		return false
	}
	// Probe the shared copy first so a miss never pays a clone.
	if _, occupied := c.Get(p); !occupied {
		return false
	}
	c = a.ensureOwned(key)
	deleted := c.Delete(p)
	if deleted && c.NumCells() == 0 {
		delete(a.chunks, key)
	}
	return deleted
}

// Chunk returns the chunk at coordinate cc, or nil if unoccupied.
func (a *Array) Chunk(cc ChunkCoord) *Chunk {
	return a.chunks[cc.Key()]
}

// ChunkByKey returns the chunk with the given key, or nil.
func (a *Array) ChunkByKey(k ChunkKey) *Chunk { return a.chunks[k] }

// PutChunk installs (or replaces) a chunk. The chunk must belong to a
// compatible schema slot; callers are trusted on region alignment.
func (a *Array) PutChunk(c *Chunk) {
	key := c.Key()
	a.chunks[key] = c
	delete(a.borrowed, key)
}

// MergeChunk merges src's cells into the resident chunk with the same
// coordinate, creating it first if absent.
func (a *Array) MergeChunk(src *Chunk) error {
	key := src.Key()
	c, ok := a.chunks[key]
	if !ok {
		a.chunks[key] = src.Clone()
		return nil
	}
	if a.borrowed[key] {
		c = a.ensureOwned(key)
	}
	return c.MergeFrom(src)
}

// ChunkKeys returns the keys of all occupied chunks in row-major order.
func (a *Array) ChunkKeys() []ChunkKey {
	keys := make([]ChunkKey, 0, len(a.chunks))
	for k := range a.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// EachChunk calls fn for every occupied chunk in row-major key order.
func (a *Array) EachChunk(fn func(c *Chunk) bool) {
	for _, k := range a.ChunkKeys() {
		if !fn(a.chunks[k]) {
			return
		}
	}
}

// EachCell calls fn for every non-empty cell in chunk order, cells sorted
// within each chunk. The point and tuple are owned by the chunks.
func (a *Array) EachCell(fn func(p Point, t Tuple) bool) {
	stop := false
	a.EachChunk(func(c *Chunk) bool {
		c.EachSorted(func(p Point, t Tuple) bool {
			if !fn(p, t) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	out := New(a.schema)
	for k, c := range a.chunks {
		out.chunks[k] = c.Clone()
	}
	return out
}

// ShallowClone returns a copy-on-write overlay over this array: the clone
// shares every chunk with the base and clones a chunk privately the first
// time one of its own mutating methods (Set, Delete, MergeChunk) touches it,
// so the base is never modified through the clone.
//
// The contract is one-directional and read-frozen: the base must not be
// mutated while clones are alive (the clone would observe the change), and
// code that mutates tuples in place after Get — rather than through Set —
// must call EnsureOwned on the affected chunk first, because Get returns the
// stored tuple and an in-place update would write through to the shared
// chunk. Taking concurrent ShallowClones of one immutable base is safe: the
// base is only read.
func (a *Array) ShallowClone() *Array {
	out := &Array{
		schema:   a.schema,
		chunks:   make(map[ChunkKey]*Chunk, len(a.chunks)),
		borrowed: make(map[ChunkKey]bool, len(a.chunks)),
	}
	for k, c := range a.chunks {
		out.chunks[k] = c
		out.borrowed[k] = true
	}
	return out
}

// ensureOwned clones the chunk under key if it is still shared with a
// ShallowClone base, and returns the (now private) resident chunk. A nil
// return means the key is unoccupied.
func (a *Array) ensureOwned(key ChunkKey) *Chunk {
	c, ok := a.chunks[key]
	if !ok {
		return nil
	}
	if a.borrowed[key] {
		c = c.Clone()
		a.chunks[key] = c
		delete(a.borrowed, key)
	}
	return c
}

// EnsureOwned makes the chunk under key private to this array, cloning it if
// it is shared with a ShallowClone base. Callers that mutate tuples in place
// after Get (additive state merges) must call this for every chunk they will
// touch before reading the tuples. A no-op for unoccupied or already-owned
// chunks.
func (a *Array) EnsureOwned(key ChunkKey) { a.ensureOwned(key) }

// Owned reports whether the chunk under key is private to this array (true
// for unoccupied keys). Shared chunks come from ShallowClone.
func (a *Array) Owned(key ChunkKey) bool { return !a.borrowed[key] }

// Warm pre-builds every chunk's lazily derived caches (sorted-offset index,
// bounding box, content hash). A chunk is not safe for concurrent use
// because even read-side iteration may build those caches; after Warm, an
// array that is never mutated again can serve any number of concurrent
// readers — the property the assembled-view cache relies on to share one
// decoded base across queries.
func (a *Array) Warm() {
	for _, c := range a.chunks {
		c.Warm()
	}
}

// Equal reports whether two arrays hold identical cells, comparing tuple
// values exactly. Schemas are compared by pointer identity of shape only
// (same dims/chunking), not by name.
func (a *Array) Equal(b *Array) bool {
	if a.NumChunks() != b.NumChunks() {
		return false
	}
	for k, ca := range a.chunks {
		cb, ok := b.chunks[k]
		if !ok || ca.NumCells() != cb.NumCells() {
			return false
		}
		same := true
		ca.Each(func(p Point, t Tuple) bool {
			u, ok := cb.Get(p)
			if !ok || len(u) != len(t) {
				same = false
				return false
			}
			for i := range t {
				if t[i] != u[i] {
					same = false
					return false
				}
			}
			return true
		})
		if !same {
			return false
		}
	}
	return true
}

// SizeBytes returns the total approximate serialized size of all chunks.
func (a *Array) SizeBytes() int64 {
	n := int64(0)
	for _, c := range a.chunks {
		n += c.SizeBytes()
	}
	return n
}
