package array

import (
	"fmt"
	"sort"
)

// Array is an in-memory sparse multi-dimensional array: a schema plus the
// set of occupied chunks. It is the logical representation; the distributed
// system stores the same chunks scattered across node stores.
type Array struct {
	schema *Schema
	chunks map[ChunkKey]*Chunk
}

// New creates an empty array with the given schema.
func New(s *Schema) *Array {
	return &Array{schema: s, chunks: make(map[ChunkKey]*Chunk)}
}

// Schema returns the array's schema.
func (a *Array) Schema() *Schema { return a.schema }

// NumChunks returns the number of occupied chunks.
func (a *Array) NumChunks() int { return len(a.chunks) }

// NumCells returns the total number of non-empty cells.
func (a *Array) NumCells() int {
	n := 0
	for _, c := range a.chunks {
		n += c.NumCells()
	}
	return n
}

// Set writes tuple t at point p, materializing the containing chunk on
// first touch.
func (a *Array) Set(p Point, t Tuple) error {
	if !a.schema.Contains(p) {
		return fmt.Errorf("array: point %v outside domain of %s", p, a.schema.Name)
	}
	cc := a.schema.ChunkCoordOf(p)
	key := cc.Key()
	c, ok := a.chunks[key]
	if !ok {
		c = NewChunk(a.schema, cc)
		a.chunks[key] = c
	}
	return c.Set(p, t)
}

// Get returns the tuple at p, or ok=false for an empty cell.
func (a *Array) Get(p Point) (Tuple, bool) {
	if !a.schema.Contains(p) {
		return nil, false
	}
	c, ok := a.chunks[a.schema.ChunkCoordOf(p).Key()]
	if !ok {
		return nil, false
	}
	return c.Get(p)
}

// Delete empties the cell at p, dropping the chunk if it becomes empty.
func (a *Array) Delete(p Point) bool {
	if !a.schema.Contains(p) {
		return false
	}
	key := a.schema.ChunkCoordOf(p).Key()
	c, ok := a.chunks[key]
	if !ok {
		return false
	}
	deleted := c.Delete(p)
	if deleted && c.NumCells() == 0 {
		delete(a.chunks, key)
	}
	return deleted
}

// Chunk returns the chunk at coordinate cc, or nil if unoccupied.
func (a *Array) Chunk(cc ChunkCoord) *Chunk {
	return a.chunks[cc.Key()]
}

// ChunkByKey returns the chunk with the given key, or nil.
func (a *Array) ChunkByKey(k ChunkKey) *Chunk { return a.chunks[k] }

// PutChunk installs (or replaces) a chunk. The chunk must belong to a
// compatible schema slot; callers are trusted on region alignment.
func (a *Array) PutChunk(c *Chunk) { a.chunks[c.Key()] = c }

// MergeChunk merges src's cells into the resident chunk with the same
// coordinate, creating it first if absent.
func (a *Array) MergeChunk(src *Chunk) error {
	key := src.Key()
	c, ok := a.chunks[key]
	if !ok {
		a.chunks[key] = src.Clone()
		return nil
	}
	return c.MergeFrom(src)
}

// ChunkKeys returns the keys of all occupied chunks in row-major order.
func (a *Array) ChunkKeys() []ChunkKey {
	keys := make([]ChunkKey, 0, len(a.chunks))
	for k := range a.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// EachChunk calls fn for every occupied chunk in row-major key order.
func (a *Array) EachChunk(fn func(c *Chunk) bool) {
	for _, k := range a.ChunkKeys() {
		if !fn(a.chunks[k]) {
			return
		}
	}
}

// EachCell calls fn for every non-empty cell in chunk order, cells sorted
// within each chunk. The point and tuple are owned by the chunks.
func (a *Array) EachCell(fn func(p Point, t Tuple) bool) {
	stop := false
	a.EachChunk(func(c *Chunk) bool {
		c.EachSorted(func(p Point, t Tuple) bool {
			if !fn(p, t) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	out := New(a.schema)
	for k, c := range a.chunks {
		out.chunks[k] = c.Clone()
	}
	return out
}

// Equal reports whether two arrays hold identical cells, comparing tuple
// values exactly. Schemas are compared by pointer identity of shape only
// (same dims/chunking), not by name.
func (a *Array) Equal(b *Array) bool {
	if a.NumChunks() != b.NumChunks() {
		return false
	}
	for k, ca := range a.chunks {
		cb, ok := b.chunks[k]
		if !ok || ca.NumCells() != cb.NumCells() {
			return false
		}
		same := true
		ca.Each(func(p Point, t Tuple) bool {
			u, ok := cb.Get(p)
			if !ok || len(u) != len(t) {
				same = false
				return false
			}
			for i := range t {
				if t[i] != u[i] {
					same = false
					return false
				}
			}
			return true
		})
		if !same {
			return false
		}
	}
	return true
}

// SizeBytes returns the total approximate serialized size of all chunks.
func (a *Array) SizeBytes() int64 {
	n := int64(0)
	for _, c := range a.chunks {
		n += c.SizeBytes()
	}
	return n
}
