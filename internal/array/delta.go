package array

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunk delta wire format ("ACHΔ"; all integers big-endian):
//
//	u32  magic "ACHD"
//	u32  number of dimensions d
//	d ×  i64 chunk coordinate
//	d ×  i64 region lo
//	d ×  i64 region hi
//	u32  attributes per cell m
//	u64  number of set records s
//	u64  number of delete records x
//	s ×  (i64 local offset, m × f64 attribute values)
//	x ×  i64 local offset
//
// A delta carries the cell-level difference new − old of two encodings of
// the same chunk slot: set records for cells added or changed, delete
// records for cells present in old and absent in new. Applying a delta to
// old reproduces new exactly. Records are written in ascending offset
// order, so deltas are canonical too.
const deltaMagic = 0x41434844 // "ACHD"

// tuplesEqual compares two tuples bit-exactly (the wire format round-trips
// float bits, so bit equality is the right notion here).
func tuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// ComputeDelta builds the ACHΔ payload transforming old into new. Both
// chunks must cover the same slot (coordinate, region, attribute count);
// ok=false is returned — with no payload — when they don't, or when the
// delta would not be smaller than new's full encoding (the caller should
// full-ship instead).
func ComputeDelta(old, new *Chunk) (delta []byte, ok bool) {
	if !old.coord.Equal(new.coord) || old.nattrs != new.nattrs ||
		!old.region.Lo.Equal(new.region.Lo) || !old.region.Hi.Equal(new.region.Hi) {
		return nil, false
	}
	var sets, dels []int64
	for _, off := range new.index() {
		nt := new.cells[off]
		ot, had := old.cells[off]
		if had && tuplesEqual(nt, ot) {
			continue
		}
		sets = append(sets, off)
	}
	for _, off := range old.index() {
		if _, still := new.cells[off]; !still {
			dels = append(dels, off)
		}
	}
	d := len(new.coord)
	m := new.nattrs
	header := 4 + 4 + 8*d*3 + 4 + 8 + 8
	deltaSize := header + len(sets)*(8+8*m) + len(dels)*8
	fullSize := 4 + 4 + 8*d*3 + 4 + 8 + len(new.cells)*(8+8*m)
	if deltaSize >= fullSize {
		return nil, false
	}
	buf := make([]byte, 0, deltaSize)
	buf = binary.BigEndian.AppendUint32(buf, deltaMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(d))
	for _, v := range new.coord {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range new.region.Lo {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range new.region.Hi {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(m))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(sets)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(dels)))
	for _, off := range sets {
		buf = binary.BigEndian.AppendUint64(buf, uint64(off))
		for _, v := range new.cells[off] {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for _, off := range dels {
		buf = binary.BigEndian.AppendUint64(buf, uint64(off))
	}
	return buf, true
}

// ApplyDelta applies an ACHΔ payload to the chunk in place. The delta must
// target the chunk's slot; a mismatch (or a malformed payload) leaves the
// chunk unchanged and returns an error.
func ApplyDelta(c *Chunk, delta []byte) error {
	r := reader{buf: delta}
	if m := r.u32(); m != deltaMagic {
		return fmt.Errorf("array: bad delta magic %#x", m)
	}
	d := int(r.u32())
	if d <= 0 || d > 64 {
		return fmt.Errorf("array: implausible delta dimensionality %d", d)
	}
	if d != len(c.coord) {
		return fmt.Errorf("array: delta has %d dims, chunk has %d", d, len(c.coord))
	}
	coord := make(ChunkCoord, d)
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range coord {
		coord[i] = r.i64()
	}
	for i := range lo {
		lo[i] = r.i64()
	}
	for i := range hi {
		hi[i] = r.i64()
	}
	nattrs := r.u32()
	ns := r.u64()
	nx := r.u64()
	if r.err != nil {
		return r.err
	}
	if nattrs > maxDecodeAttrs {
		return fmt.Errorf("array: implausible delta attribute count %d", nattrs)
	}
	if !coord.Equal(c.coord) || int(nattrs) != c.nattrs ||
		!lo.Equal(c.region.Lo) || !hi.Equal(c.region.Hi) {
		return fmt.Errorf("array: delta targets chunk %v/%d attrs, have %v/%d", coord, nattrs, c.coord, c.nattrs)
	}
	rem := uint64(len(delta) - r.pos)
	setSize := uint64(8 + 8*c.nattrs)
	if ns > rem/setSize || nx > (rem-ns*setSize)/8 || rem != ns*setSize+nx*8 {
		return fmt.Errorf("array: delta payload is %d bytes, want %d sets + %d deletes", rem, ns, nx)
	}
	for i := uint64(0); i < ns; i++ {
		off := r.i64()
		t := make(Tuple, c.nattrs)
		for j := range t {
			t[j] = math.Float64frombits(r.u64())
		}
		if _, occupied := c.cells[off]; !occupied {
			c.invalidate()
		}
		c.hashOK = false
		c.cells[off] = t
	}
	for i := uint64(0); i < nx; i++ {
		off := r.i64()
		if _, ok := c.cells[off]; ok {
			delete(c.cells, off)
			c.invalidate()
		}
	}
	return r.err
}
