package workload

import (
	"fmt"
	"math/rand"

	"github.com/arrayview/arrayview/internal/array"
)

// GeneratePTFSkewed builds the skew-ladder's "skewed" workload: every
// nightly batch advances time (fresh slabs, Real semantics — no cell ever
// overwrites another), but spatially the batch is heavy-tailed. A hotFrac
// share of each night's detections lands on one fixed telescope pointing
// (the same few spatial chunk columns night after night — the heavy
// footprint a classifier should learn), and the remainder scatters
// uniformly over the whole (ra, dec) domain, one detection per draw, so
// the cold tail touches many chunks that each see an update only rarely.
//
// Because every batch owns its own time slab, raw chunk keys never repeat;
// the skew is only visible to a classifier that projects out the time
// dimension. And because all inserts are disjoint, any eager/lazy split
// applies them exactly (disjoint inserts commute), which makes this the
// workload where deferral is both safe and profitable.
func GeneratePTFSkewed(c PTFConfig, hotFrac float64) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("workload: hot fraction %v outside [0, 1]", hotFrac)
	}
	schema := c.Schema()
	rng := rand.New(rand.NewSource(c.Seed))

	// The hot pointing: a tight group of field centers fixed for the whole
	// run, in the middle of the domain.
	hot := make([]fieldCenter, c.FieldsPerNight)
	span := 4 * c.Sigma
	midRA, midDec := float64(c.RaRange)/2, float64(c.DecRange)/2
	for i := range hot {
		hot[i] = fieldCenter{
			ra:  clampF(midRA+(rng.Float64()-0.5)*2*span, 1, float64(c.RaRange)),
			dec: clampF(midDec+(rng.Float64()-0.5)*2*span, 1, float64(c.DecRange)),
		}
	}

	seen := make(map[string]bool)
	place := func(a *array.Array, night int64, mk func() array.Point) {
		t0 := night * c.NightLen
		for attempt := 0; attempt < 4; attempt++ {
			p := mk()
			p[0] = t0 + rng.Int63n(c.NightLen)
			k := p.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			_ = a.Set(p, array.Tuple{10 + rng.Float64()*10, 14 + rng.Float64()*8})
			return
		}
	}
	hotPoint := func() array.Point {
		f := hot[rng.Intn(len(hot))]
		return array.Point{0,
			gaussInt(rng, f.ra, c.Sigma, 1, c.RaRange),
			gaussInt(rng, f.dec, c.Sigma, 1, c.DecRange)}
	}
	coldPoint := func() array.Point {
		return array.Point{0,
			1 + rng.Int63n(c.RaRange),
			1 + rng.Int63n(c.DecRange)}
	}

	// History: the hot pointing is already warm before the first batch, so
	// the classifier's window has something to learn from.
	base := array.New(schema)
	for n := 0; n < c.BaseNights; n++ {
		for i := 0; i < c.DetectionsPerNight; i++ {
			if rng.Float64() < hotFrac {
				place(base, int64(n), hotPoint)
			} else {
				place(base, int64(n), coldPoint)
			}
		}
	}
	var batches []*array.Array
	for b := 0; b < c.NumBatches; b++ {
		batch := array.New(schema)
		night := int64(c.BaseNights + b)
		for i := 0; i < c.DetectionsPerNight; i++ {
			if rng.Float64() < hotFrac {
				place(batch, night, hotPoint)
			} else {
				place(batch, night, coldPoint)
			}
		}
		batches = append(batches, batch)
	}
	return &Dataset{Schema: schema, Base: base, Batches: batches}, nil
}
