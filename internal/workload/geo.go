package workload

import (
	"fmt"
	"math/rand"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/view"
)

// GEOConfig parameterizes the synthetic LinkedGeoData "Place" dataset: 2-D
// points of interest, each replicated with Gaussian offsets exactly as the
// paper augments the original 3M-point dataset.
type GEOConfig struct {
	Seed int64

	// LongRange and LatRange size the domain; chunking is fixed at the
	// paper's (100, 50).
	LongRange, LatRange int64

	// NumPOI original points are drawn from NumClusters urban clusters;
	// each is replicated Replication times with Gaussian sigma (in cells).
	NumPOI, NumClusters, Replication int
	Sigma                            float64

	// BatchFraction of all cells goes into each update batch (the paper
	// uses 1%); NumBatches batches are extracted, the rest is base data.
	BatchFraction float64
	NumBatches    int
}

// DefaultGEOConfig mirrors the paper's setup at reduced scale.
func DefaultGEOConfig() GEOConfig {
	return GEOConfig{
		Seed:          7,
		LongRange:     10000,
		LatRange:      5000,
		NumPOI:        6000,
		NumClusters:   25,
		Replication:   9,
		Sigma:         25,
		BatchFraction: 0.01,
		NumBatches:    10,
	}
}

// Validate reports configuration errors.
func (c GEOConfig) Validate() error {
	if c.LongRange < 100 || c.LatRange < 50 {
		return fmt.Errorf("workload: GEO domain %dx%d too small", c.LongRange, c.LatRange)
	}
	if c.NumPOI <= 0 || c.NumClusters <= 0 || c.Replication < 0 || c.Sigma <= 0 {
		return fmt.Errorf("workload: bad GEO density")
	}
	if c.BatchFraction <= 0 || c.BatchFraction >= 1 || c.NumBatches <= 0 {
		return fmt.Errorf("workload: bad GEO batching (%v x %d)", c.BatchFraction, c.NumBatches)
	}
	return nil
}

// Schema builds the GEO schema: GEO<pop>[long, lat].
func (c GEOConfig) Schema() *array.Schema {
	return array.MustSchema("GEO",
		[]array.Dimension{
			{Name: "long", Start: 1, End: c.LongRange, ChunkSize: 100},
			{Name: "lat", Start: 1, End: c.LatRange, ChunkSize: 50},
		},
		[]array.Attribute{{Name: "pop", Type: array.Float64}})
}

// GenerateGEO builds the dataset and splits NumBatches disjoint batches of
// BatchFraction of the cells each; the remainder is the base array. Batch
// composition follows the mode: Random samples everywhere, Correlated
// draws every batch from one cluster, Periodic cycles three clusters.
func GenerateGEO(c GEOConfig, mode BatchMode) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	schema := c.Schema()
	rng := rand.New(rand.NewSource(c.Seed))

	// Cluster centers.
	type center struct{ x, y float64 }
	centers := make([]center, c.NumClusters)
	for i := range centers {
		centers[i] = center{
			x: 1 + rng.Float64()*float64(c.LongRange-1),
			y: 1 + rng.Float64()*float64(c.LatRange-1),
		}
	}

	// All cells, tagged by their cluster, deduplicated by coordinate.
	type cell struct {
		p       array.Point
		v       float64
		cluster int
	}
	seen := make(map[string]bool)
	var cells []cell
	addPoint := func(x, y float64, cluster int) {
		p := array.Point{
			clampI64(int64(x+0.5), 1, c.LongRange),
			clampI64(int64(y+0.5), 1, c.LatRange),
		}
		k := p.String()
		if seen[k] {
			return
		}
		seen[k] = true
		cells = append(cells, cell{p: p, v: float64(rng.Intn(1000) + 1), cluster: cluster})
	}
	for i := 0; i < c.NumPOI; i++ {
		ci := rng.Intn(c.NumClusters)
		x := centers[ci].x + rng.NormFloat64()*c.Sigma*4
		y := centers[ci].y + rng.NormFloat64()*c.Sigma*4
		addPoint(x, y, ci)
		// Gaussian replication, as in the paper's synthetic augmentation.
		for r := 0; r < c.Replication; r++ {
			addPoint(x+rng.NormFloat64()*c.Sigma, y+rng.NormFloat64()*c.Sigma, ci)
		}
	}

	// Partition cells into batches per mode; everything unselected is base.
	perBatch := int(float64(len(cells)) * c.BatchFraction)
	if perBatch < 1 {
		perBatch = 1
	}
	inBatch := make([]int, len(cells)) // -1 = base
	for i := range inBatch {
		inBatch[i] = -1
	}
	// Footprints for correlated/periodic modes are the three longitude
	// bands of the domain: spatially coherent regions with enough cells to
	// sustain repeated disjoint batches.
	band := func(ci int) int {
		g := int(3 * centers[ci].x / float64(c.LongRange))
		if g < 0 {
			g = 0
		}
		if g > 2 {
			g = 2
		}
		return g
	}
	footprints := make(map[int][]int)
	allIdx := make([]int, len(cells))
	for i, cl := range cells {
		footprints[band(cl.cluster)] = append(footprints[band(cl.cluster)], i)
		allIdx[i] = i
	}
	rng.Shuffle(len(allIdx), func(a, b int) { allIdx[a], allIdx[b] = allIdx[b], allIdx[a] })
	// Shuffle the footprints in band order, not map order: ranging over the
	// map would consume the rng in a run-dependent sequence and break
	// same-seed reproducibility.
	for g := 0; g < 3; g++ {
		idxs := footprints[g]
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
	}
	// Draw n unclaimed cells from a pool, returning the remaining pool.
	draw := func(pool []int, batch, n int) []int {
		taken := 0
		rest := pool[:0]
		for _, i := range pool {
			if taken < n && inBatch[i] == -1 {
				inBatch[i] = batch
				taken++
				continue
			}
			rest = append(rest, i)
		}
		return rest
	}
	// Correlated and periodic modes replay literal batches (the paper
	// repeats one batch ten times / cycles three), so only the distinct
	// prototypes draw cells; the replay is done after materialization.
	pool := allIdx
	for b := 0; b < c.NumBatches; b++ {
		switch mode {
		case Correlated:
			if b == 0 {
				footprints[0] = draw(footprints[0], b, perBatch)
			}
		case Periodic:
			g := periodicOrder[b%len(periodicOrder)]
			if !periodicSeen(b) {
				footprints[g] = draw(footprints[g], b, perBatch)
			}
		default: // Random and Real coincide for GEO
			pool = draw(pool, b, perBatch)
		}
	}

	base := array.New(schema)
	batches := make([]*array.Array, c.NumBatches)
	for b := range batches {
		batches[b] = array.New(schema)
	}
	for i, cl := range cells {
		target := base
		if inBatch[i] >= 0 {
			target = batches[inBatch[i]]
		}
		if err := target.Set(cl.p, array.Tuple{cl.v}); err != nil {
			return nil, err
		}
	}
	// Replay the prototype batches for the repeated slots.
	switch mode {
	case Correlated:
		for b := 1; b < c.NumBatches; b++ {
			batches[b] = batches[0].Clone()
		}
	case Periodic:
		proto := make(map[int]*array.Array)
		for b := 0; b < c.NumBatches; b++ {
			g := periodicOrder[b%len(periodicOrder)]
			if p, ok := proto[g]; ok {
				batches[b] = p.Clone()
			} else {
				proto[g] = batches[b]
			}
		}
	}
	return &Dataset{Schema: schema, Base: base, Batches: batches}, nil
}

// periodicSeen reports whether the footprint of batch b already appeared
// earlier in the periodic schedule.
func periodicSeen(b int) bool {
	g := periodicOrder[b%len(periodicOrder)]
	for i := 0; i < b && i < len(periodicOrder); i++ {
		if periodicOrder[i] == g {
			return true
		}
	}
	return false
}

// GEOView is the paper's GEO view: POIs within L∞(1) of each other (1 mile
// at the paper's resolution), counted per cell.
func GEOView(schema *array.Schema) (*view.Definition, error) {
	return CountView("GEOV", schema, shape.Linf(2, 1))
}
