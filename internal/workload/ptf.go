package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/view"
)

// PTFConfig parameterizes the synthetic PTF catalog. The defaults scale the
// paper's PTF[time=1,153064; ra=1,100000; dec=1,50000] with chunk
// (112,100,50) down by roughly 10x per spatial dimension while keeping the
// chunk geometry, so chunk-level behaviour is preserved.
type PTFConfig struct {
	Seed int64

	// RaRange and DecRange size the spatial domain; chunking is fixed at
	// the paper's (100, 50) spatial chunk.
	RaRange, DecRange int64
	// NightLen is the time extent of one night; it equals the time chunk
	// size so each night's detections form fresh chunks, as in the PTF
	// pipeline where batches always carry new timestamps.
	NightLen int64

	// BaseNights and NumBatches shape the timeline: BaseNights of history
	// are loaded as the base array; each batch is one further night.
	BaseNights, NumBatches int

	// NumFields is the pool of telescope field centers; FieldsPerNight are
	// visited each night. DetectionsPerNight spread over those fields.
	NumFields, FieldsPerNight, DetectionsPerNight int

	// Sigma is the spatial spread of detections around a field center, in
	// cells.
	Sigma float64

	// Spread scales the footprint from which fields are drawn: the paper's
	// Figure 10c varies the spread of updates over the (ra, dec) range. 1.0
	// uses the whole domain.
	Spread float64
}

// DefaultPTFConfig returns a laptop-scale configuration that produces
// batches of a few hundred chunks, matching the shape of the paper's
// 600-2000 chunk batches.
func DefaultPTFConfig() PTFConfig {
	return PTFConfig{
		Seed:               1,
		RaRange:            10000,
		DecRange:           5000,
		NightLen:           112,
		BaseNights:         4,
		NumBatches:         10,
		NumFields:          12,
		FieldsPerNight:     4,
		DetectionsPerNight: 1500,
		Sigma:              60,
		Spread:             1.0,
	}
}

// Validate reports configuration errors.
func (c PTFConfig) Validate() error {
	if c.RaRange < 100 || c.DecRange < 50 {
		return fmt.Errorf("workload: PTF domain %dx%d too small", c.RaRange, c.DecRange)
	}
	if c.NightLen <= 0 || c.BaseNights < 0 || c.NumBatches <= 0 {
		return fmt.Errorf("workload: bad PTF timeline (night=%d base=%d batches=%d)",
			c.NightLen, c.BaseNights, c.NumBatches)
	}
	if c.NumFields <= 0 || c.FieldsPerNight <= 0 || c.FieldsPerNight > c.NumFields {
		return fmt.Errorf("workload: bad PTF fields (%d of %d)", c.FieldsPerNight, c.NumFields)
	}
	if c.DetectionsPerNight <= 0 || c.Sigma <= 0 {
		return fmt.Errorf("workload: bad PTF density")
	}
	if c.Spread <= 0 || c.Spread > 1 {
		return fmt.Errorf("workload: spread %v outside (0, 1]", c.Spread)
	}
	return nil
}

// PTFSchema builds the catalog schema for the config: a sparse 3-D array
// catalog<bright,mag>[time, ra, dec].
func (c PTFConfig) Schema() *array.Schema {
	totalNights := int64(c.BaseNights + c.NumBatches)
	return array.MustSchema("PTF",
		[]array.Dimension{
			{Name: "time", Start: 0, End: totalNights*c.NightLen - 1, ChunkSize: c.NightLen},
			{Name: "ra", Start: 1, End: c.RaRange, ChunkSize: 100},
			{Name: "dec", Start: 1, End: c.DecRange, ChunkSize: 50},
		},
		[]array.Attribute{
			{Name: "bright", Type: array.Float64},
			{Name: "mag", Type: array.Float64},
		})
}

// fieldCenter is one telescope pointing target.
type fieldCenter struct{ ra, dec float64 }

// GeneratePTF builds the catalog: BaseNights of history plus NumBatches
// nightly update batches whose field selection follows the batch mode. All
// cells are disjoint by construction (each night owns a time slab).
func GeneratePTF(c PTFConfig, mode BatchMode) (*Dataset, error) {
	return generatePTF(c, mode, nil)
}

// GeneratePTFSizes builds a Real-mode catalog with one batch per entry of
// counts, each batch carrying exactly that many detection draws. Used by
// the paper's batch-size and batch-count sensitivity sweeps (Figure 10a/b).
func GeneratePTFSizes(c PTFConfig, counts []int) (*Dataset, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("workload: empty batch size list")
	}
	c.NumBatches = len(counts)
	return generatePTF(c, Real, counts)
}

func generatePTF(c PTFConfig, mode BatchMode, counts []int) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	schema := c.Schema()
	rng := rand.New(rand.NewSource(c.Seed))

	// Field pool: dec is skewed toward the telescope latitude (domain
	// middle), ra spread across the (possibly narrowed) footprint.
	raLo := 1 + int64(float64(c.RaRange)*(1-c.Spread)/2)
	raHi := c.RaRange - int64(float64(c.RaRange)*(1-c.Spread)/2)
	decLo := 1 + int64(float64(c.DecRange)*(1-c.Spread)/2)
	decHi := c.DecRange - int64(float64(c.DecRange)*(1-c.Spread)/2)
	// The telescope points to a relatively small area of the sky during
	// each night (Section 4.1): the field pool is organized into tight
	// groups so a night's consecutive-field selection is spatially
	// contiguous, with the footprint drifting across nights.
	fields := make([]fieldCenter, c.NumFields)
	numGroups := (c.NumFields + c.FieldsPerNight - 1) / c.FieldsPerNight
	groupRA := make([]float64, numGroups)
	for g := range groupRA {
		groupRA[g] = float64(raLo) + rng.Float64()*float64(raHi-raLo)
	}
	groupSpan := 4 * c.Sigma
	for i := range fields {
		fields[i] = fieldCenter{
			ra: clampF(groupRA[i/c.FieldsPerNight]+(rng.Float64()-0.5)*2*groupSpan,
				float64(raLo), float64(raHi)),
			dec: float64(gaussInt(rng, float64(decLo+decHi)/2, float64(decHi-decLo)/6, decLo, decHi)),
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].ra < fields[j].ra })

	// Footprints: the field subsets visited per night, per mode.
	nightFields := func(night int, isBatch bool) []fieldCenter {
		pick := func(start int) []fieldCenter {
			out := make([]fieldCenter, c.FieldsPerNight)
			for i := 0; i < c.FieldsPerNight; i++ {
				out[i] = fields[(start+i)%c.NumFields]
			}
			return out
		}
		if !isBatch {
			return pick(night) // history drifts across the pool
		}
		switch mode {
		case Correlated:
			return pick(0)
		case Periodic:
			return pick(periodicOrder[night%len(periodicOrder)] * c.FieldsPerNight)
		case Random:
			out := make([]fieldCenter, c.FieldsPerNight)
			for i := range out {
				out[i] = fields[rng.Intn(c.NumFields)]
			}
			return out
		default: // Real: keep drifting like the history
			return pick(c.BaseNights + night)
		}
	}

	// seen guards cell-level disjointness across base and batches, which
	// matters when batches share a time slab (correlated/periodic modes).
	seen := make(map[string]bool)
	fillNight := func(a *array.Array, night int64, fs []fieldCenter, count int) {
		t0 := night * c.NightLen
		for i := 0; i < count; i++ {
			placed := false
			for attempt := 0; attempt < 4 && !placed; attempt++ {
				f := fs[rng.Intn(len(fs))]
				p := array.Point{
					t0 + rng.Int63n(c.NightLen),
					gaussInt(rng, f.ra, c.Sigma, 1, c.RaRange),
					gaussInt(rng, f.dec, c.Sigma, 1, c.DecRange),
				}
				k := p.String()
				if seen[k] {
					continue // duplicate detection; retry
				}
				seen[k] = true
				_ = a.Set(p, array.Tuple{10 + rng.Float64()*10, 14 + rng.Float64()*8})
				placed = true
			}
		}
	}

	// batchNight maps a batch index to its time slab. Correlated batches
	// repeat one slab and periodic batches cycle three, reproducing the
	// paper's repeated-batch experiments where updates hit the same chunks
	// again; real/random batches advance nightly.
	batchNight := func(b int) int64 {
		switch mode {
		case Correlated:
			return int64(c.BaseNights)
		case Periodic:
			return int64(c.BaseNights + periodicOrder[b%len(periodicOrder)])
		default:
			return int64(c.BaseNights + b)
		}
	}

	base := array.New(schema)
	for n := 0; n < c.BaseNights; n++ {
		fillNight(base, int64(n), nightFields(n, false), c.DetectionsPerNight)
	}
	var batches []*array.Array
	// Correlated and periodic modes replay literal batches, exactly as the
	// paper repeats one real batch ten times (or cycles three): the same
	// chunks, the same triples, every round. Replayed insertions overwrite
	// rather than accumulate, so view values double-count — as in the
	// paper, these are performance workloads, not correctness ones.
	replay := make(map[int64]*array.Array)
	for b := 0; b < c.NumBatches; b++ {
		night := batchNight(b)
		if mode == Correlated || mode == Periodic {
			if prev, ok := replay[night]; ok {
				batches = append(batches, prev.Clone())
				continue
			}
		}
		batch := array.New(schema)
		// Nightly volume varies — "in some nights the PTF telescope takes
		// more images than in others" — except for replayed batches, which
		// are identical by construction.
		count := c.DetectionsPerNight
		switch {
		case counts != nil:
			count = counts[b]
		case mode == Real || mode == Random:
			count = int(float64(c.DetectionsPerNight) * (0.5 + rng.Float64()))
		}
		fillNight(batch, night, nightFields(b, true), count)
		if mode == Correlated || mode == Periodic {
			replay[night] = batch
		}
		batches = append(batches, batch)
	}
	return &Dataset{Schema: schema, Base: base, Batches: batches}, nil
}

// PTF5View is the paper's PTF-5 view: L1(1) similarity on (ra, dec) across
// the previous `window` time steps (200 days in the paper; here scaled to
// the night length).
func PTF5View(schema *array.Schema, window int64) (*view.Definition, error) {
	sh, err := shape.Embed(shape.L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-window, 0}})
	if err != nil {
		return nil, err
	}
	return CountView("PTF5", schema, sh)
}

// PTF25View is the paper's PTF-25 view: L∞(2) similarity on (ra, dec)
// independent of time (bounded here by the dataset's full time range).
func PTF25View(schema *array.Schema) (*view.Definition, error) {
	t := schema.Dims[0]
	span := t.End - t.Start
	sh, err := shape.Embed(shape.Linf(2, 2), 3, []int{1, 2}, map[int][2]int64{0: {-span, span}})
	if err != nil {
		return nil, err
	}
	return CountView("PTF25", schema, sh)
}

// GeneratePTFSpread builds the Figure 10c sensitivity workload: each batch
// samples numChunks chunk sites (with replacement — narrow rectangles have
// fewer distinct slots than samples, exactly as in the paper's spread-10
// case) uniformly within the spread-scaled (ra, dec) rectangle and drops
// detPerChunk detections into each, so batch volume stays fixed while the
// spatial dispersion varies. Batches advance nightly (Real semantics).
func GeneratePTFSpread(c PTFConfig, numChunks, detPerChunk int, spread float64) (*Dataset, error) {
	c.Spread = spread
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if numChunks <= 0 || detPerChunk <= 0 {
		return nil, fmt.Errorf("workload: bad spread workload (%d chunks x %d)", numChunks, detPerChunk)
	}
	schema := c.Schema()
	rng := rand.New(rand.NewSource(c.Seed))

	raLo := 1 + int64(float64(c.RaRange)*(1-spread)/2)
	raHi := c.RaRange - int64(float64(c.RaRange)*(1-spread)/2)
	decLo := 1 + int64(float64(c.DecRange)*(1-spread)/2)
	decHi := c.DecRange - int64(float64(c.DecRange)*(1-spread)/2)

	seen := make(map[string]bool)
	fill := func(a *array.Array, night int64) {
		t0 := night * c.NightLen
		// Sample chunk sites with replacement and coalesce duplicates —
		// the paper samples existing chunks, so a narrow rectangle yields
		// fewer distinct chunks (an effectively smaller batch) at the same
		// per-chunk density.
		sites := make(map[[2]int64]bool)
		for s := 0; s < numChunks; s++ {
			ra := raLo + rng.Int63n(maxI64w(raHi-raLo, 1))
			dec := decLo + rng.Int63n(maxI64w(decHi-decLo, 1))
			sites[[2]int64{(ra-1)/100*100 + 1, (dec-1)/50*50 + 1}] = true
		}
		for site := range sites {
			ra0, dec0 := site[0], site[1]
			for d := 0; d < detPerChunk; d++ {
				for attempt := 0; attempt < 4; attempt++ {
					p := array.Point{
						t0 + rng.Int63n(c.NightLen),
						clampI64(ra0+rng.Int63n(100), 1, c.RaRange),
						clampI64(dec0+rng.Int63n(50), 1, c.DecRange),
					}
					k := p.String()
					if seen[k] {
						continue
					}
					seen[k] = true
					_ = a.Set(p, array.Tuple{10 + rng.Float64()*10, 14 + rng.Float64()*8})
					break
				}
			}
		}
	}

	// The base models the full dense catalog: every spatial chunk slot of
	// the whole domain holds detections, independent of the update spread
	// (the paper samples its 500 update chunks out of the complete PTF
	// array). Only the batches are spread-limited.
	base := array.New(schema)
	for n := 0; n < c.BaseNights; n++ {
		t0 := int64(n) * c.NightLen
		for ra0 := int64(1); ra0 <= c.RaRange; ra0 += 100 {
			for dec0 := int64(1); dec0 <= c.DecRange; dec0 += 50 {
				for d := 0; d < detPerChunk; d++ {
					p := array.Point{
						t0 + rng.Int63n(c.NightLen),
						clampI64(ra0+rng.Int63n(100), 1, c.RaRange),
						clampI64(dec0+rng.Int63n(50), 1, c.DecRange),
					}
					k := p.String()
					if seen[k] {
						continue
					}
					seen[k] = true
					_ = base.Set(p, array.Tuple{10 + rng.Float64()*10, 14 + rng.Float64()*8})
				}
			}
		}
	}
	var batches []*array.Array
	for b := 0; b < c.NumBatches; b++ {
		batch := array.New(schema)
		fill(batch, int64(c.BaseNights+b))
		batches = append(batches, batch)
	}
	return &Dataset{Schema: schema, Base: base, Batches: batches}, nil
}

func maxI64w(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
