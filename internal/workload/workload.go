// Package workload generates the synthetic stand-ins for the paper's
// evaluation datasets (Section 6.1): the PTF astronomical catalog — a
// sparse 3-D array [time, ra, dec] whose detections cluster around nightly
// telescope pointings — and the LinkedGeoData GEO dataset — 2-D
// points-of-interest with Gaussian replication. It also extracts batch
// sequences in the paper's four configurations: real (time-ordered),
// random, correlated, and periodic.
//
// Substitution note (see DESIGN.md): the real 343 GB PTF catalog is not
// redistributable; these generators reproduce the properties that drive
// maintenance cost — spatial clustering of updates, chunk-level sparsity,
// and batch size in chunks — at laptop scale.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// BatchMode selects how update batches relate to each other (Section 6.1,
// "Batch updates").
type BatchMode int

const (
	// Real batches follow the acquisition order: each batch is the next
	// night's detections, pointed at a drifting subset of fields. For GEO
	// (no time dimension) this degenerates to Random, as in the paper.
	Real BatchMode = iota
	// Random batches sample uniformly from the whole domain.
	Random
	// Correlated batches repeat the same spatial footprint every time.
	Correlated
	// Periodic batches cycle three footprints in the paper's order
	// 1,2,3,3,2,1,1,2,3,3.
	Periodic
)

// String names the mode.
func (m BatchMode) String() string {
	switch m {
	case Real:
		return "real"
	case Random:
		return "random"
	case Correlated:
		return "correlated"
	case Periodic:
		return "periodic"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// ParseMode parses a mode name.
func ParseMode(s string) (BatchMode, error) {
	switch s {
	case "real":
		return Real, nil
	case "random":
		return Random, nil
	case "correlated":
		return Correlated, nil
	case "periodic":
		return Periodic, nil
	}
	return 0, fmt.Errorf("workload: unknown batch mode %q", s)
}

// periodicOrder is the paper's periodic batch schedule over 3 footprints.
var periodicOrder = []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 2}

// Dataset is a generated base array plus an ordered sequence of disjoint
// update batches.
type Dataset struct {
	Schema  *array.Schema
	Base    *array.Array
	Batches []*array.Array
}

// TotalCells returns the cell count across base and batches.
func (d *Dataset) TotalCells() int {
	n := d.Base.NumCells()
	for _, b := range d.Batches {
		n += b.NumCells()
	}
	return n
}

// clampI64 confines v to [lo, hi].
func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gaussInt draws a Gaussian integer around mean with the given sigma,
// clamped to [lo, hi].
func gaussInt(rng *rand.Rand, mean float64, sigma float64, lo, hi int64) int64 {
	return clampI64(int64(mean+rng.NormFloat64()*sigma+0.5), lo, hi)
}

// CountView builds the standard evaluation view over a dataset's schema: a
// COUNT(*) self-join view with the given shape, grouped by every dimension
// (the paper's "association table" shape of statistics per detection).
func CountView(name string, schema *array.Schema, sh *shape.Shape) (*view.Definition, error) {
	groupBy := make([]string, len(schema.Dims))
	for i, d := range schema.Dims {
		groupBy[i] = d.Name
	}
	return view.NewDefinition(name, schema, schema,
		simjoin.NewPred(sh, nil), groupBy,
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}}, nil)
}

// clampF confines v to [lo, hi].
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
