package workload

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// smallPTF returns a fast test-scale PTF config.
func smallPTF() PTFConfig {
	c := DefaultPTFConfig()
	c.RaRange = 2000
	c.DecRange = 1000
	c.BaseNights = 2
	c.NumBatches = 6
	c.DetectionsPerNight = 200
	c.NumFields = 6
	c.FieldsPerNight = 2
	return c
}

func smallGEO() GEOConfig {
	c := DefaultGEOConfig()
	c.LongRange = 2000
	c.LatRange = 1000
	c.NumPOI = 600
	c.NumClusters = 9
	c.NumBatches = 6
	c.BatchFraction = 0.02
	return c
}

// disjoint verifies no cell appears in two pieces of the dataset.
func disjoint(t *testing.T, d *Dataset) {
	t.Helper()
	seen := make(map[string]string)
	record := func(name string, a *array.Array) {
		a.EachCell(func(p array.Point, _ array.Tuple) bool {
			k := p.String()
			if prev, ok := seen[k]; ok {
				t.Fatalf("cell %s appears in both %s and %s", k, prev, name)
			}
			seen[k] = name
			return true
		})
	}
	record("base", d.Base)
	for i, b := range d.Batches {
		record("batch", b)
		_ = i
	}
}

func TestPTFGeneration(t *testing.T) {
	for _, mode := range []BatchMode{Real, Random, Correlated, Periodic} {
		d, err := GeneratePTF(smallPTF(), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(d.Batches) != 6 {
			t.Fatalf("%v: %d batches", mode, len(d.Batches))
		}
		if d.Base.NumCells() == 0 {
			t.Fatalf("%v: empty base", mode)
		}
		for i, b := range d.Batches {
			if b.NumCells() == 0 {
				t.Errorf("%v: batch %d empty", mode, i)
			}
		}
		if mode == Real || mode == Random {
			disjoint(t, d)
		}
		if d.TotalCells() <= d.Base.NumCells() {
			t.Errorf("%v: batches contribute no cells", mode)
		}
	}
}

func TestPTFDeterministic(t *testing.T) {
	a, err := GeneratePTF(smallPTF(), Real)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePTF(smallPTF(), Real)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Base.Equal(b.Base) {
		t.Error("same seed must reproduce the base")
	}
	for i := range a.Batches {
		if !a.Batches[i].Equal(b.Batches[i]) {
			t.Errorf("same seed must reproduce batch %d", i)
		}
	}
}

func TestPTFCorrelatedBatchesShareFootprint(t *testing.T) {
	d, err := GeneratePTF(smallPTF(), Correlated)
	if err != nil {
		t.Fatal(err)
	}
	// Correlated batches must hit the same (ra, dec) chunk columns night
	// after night: compare the spatial chunk sets of batches 1 and 4.
	spatial := func(a *array.Array) map[string]bool {
		out := make(map[string]bool)
		a.EachChunk(func(c *array.Chunk) bool {
			cc := c.Coord()
			out[array.ChunkCoord{cc[1], cc[2]}.Key().Coord().String()] = true
			return true
		})
		return out
	}
	s1, s4 := spatial(d.Batches[1]), spatial(d.Batches[4])
	overlap := 0
	for k := range s1 {
		if s4[k] {
			overlap++
		}
	}
	if overlap*2 < len(s1) {
		t.Errorf("correlated batches share only %d of %d spatial chunks", overlap, len(s1))
	}
}

func TestPTFBatchesAreFreshChunks(t *testing.T) {
	// Each night owns a time slab, so batch chunks never collide with base
	// chunks.
	d, err := GeneratePTF(smallPTF(), Real)
	if err != nil {
		t.Fatal(err)
	}
	baseKeys := make(map[array.ChunkKey]bool)
	d.Base.EachChunk(func(c *array.Chunk) bool { baseKeys[c.Key()] = true; return true })
	for _, b := range d.Batches {
		b.EachChunk(func(c *array.Chunk) bool {
			if baseKeys[c.Key()] {
				t.Fatalf("batch chunk %v collides with base", c.Coord())
			}
			baseKeys[c.Key()] = true
			return true
		})
	}
}

func TestPTFSpreadNarrowsFootprint(t *testing.T) {
	wide := smallPTF()
	narrow := smallPTF()
	narrow.Spread = 0.1
	dw, err := GeneratePTF(wide, Real)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := GeneratePTF(narrow, Real)
	if err != nil {
		t.Fatal(err)
	}
	span := func(d *Dataset) int64 {
		var lo, hi int64 = 1 << 62, -1
		d.Base.EachCell(func(p array.Point, _ array.Tuple) bool {
			if p[1] < lo {
				lo = p[1]
			}
			if p[1] > hi {
				hi = p[1]
			}
			return true
		})
		return hi - lo
	}
	if span(dn) >= span(dw) {
		t.Errorf("narrow spread span %d not below wide span %d", span(dn), span(dw))
	}
}

func TestPTFValidation(t *testing.T) {
	bad := smallPTF()
	bad.FieldsPerNight = 100
	if _, err := GeneratePTF(bad, Real); err == nil {
		t.Error("too many fields per night must fail")
	}
	bad = smallPTF()
	bad.Spread = 0
	if _, err := GeneratePTF(bad, Real); err == nil {
		t.Error("zero spread must fail")
	}
	bad = smallPTF()
	bad.DetectionsPerNight = 0
	if _, err := GeneratePTF(bad, Real); err == nil {
		t.Error("zero detections must fail")
	}
}

func TestGEOGeneration(t *testing.T) {
	for _, mode := range []BatchMode{Random, Correlated, Periodic} {
		d, err := GenerateGEO(smallGEO(), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if mode == Random {
			disjoint(t, d)
		}
		if d.Base.NumCells() == 0 {
			t.Fatalf("%v: empty base", mode)
		}
		for i, b := range d.Batches {
			if b.NumCells() == 0 {
				t.Errorf("%v: batch %d empty", mode, i)
			}
		}
	}
}

func TestGEOCorrelatedConcentration(t *testing.T) {
	d, err := GenerateGEO(smallGEO(), Correlated)
	if err != nil {
		t.Fatal(err)
	}
	// Correlated batches live inside a footprint much smaller than the
	// domain: their bounding box must be well under the full extent.
	for i, b := range d.Batches {
		var lo, hi int64 = 1 << 62, -1
		b.EachCell(func(p array.Point, _ array.Tuple) bool {
			if p[0] < lo {
				lo = p[0]
			}
			if p[0] > hi {
				hi = p[0]
			}
			return true
		})
		if hi-lo > smallGEO().LongRange*3/4 {
			t.Errorf("correlated batch %d spans %d of %d", i, hi-lo, smallGEO().LongRange)
		}
	}
}

func TestGEODeterministic(t *testing.T) {
	a, _ := GenerateGEO(smallGEO(), Random)
	b, _ := GenerateGEO(smallGEO(), Random)
	if !a.Base.Equal(b.Base) {
		t.Error("same seed must reproduce GEO")
	}
}

func TestGEOValidation(t *testing.T) {
	bad := smallGEO()
	bad.BatchFraction = 0
	if _, err := GenerateGEO(bad, Random); err == nil {
		t.Error("zero batch fraction must fail")
	}
	bad = smallGEO()
	bad.Sigma = 0
	if _, err := GenerateGEO(bad, Random); err == nil {
		t.Error("zero sigma must fail")
	}
}

func TestViewConstructors(t *testing.T) {
	pc := smallPTF()
	ps := pc.Schema()
	v5, err := PTF5View(ps, 224)
	if err != nil {
		t.Fatal(err)
	}
	if v5.Schema().NumDims() != 3 {
		t.Error("PTF5 view must keep 3 dims")
	}
	v25, err := PTF25View(ps)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := v25.Pred.Shape.Box()
	if lo[0] >= 0 || hi[0] <= 0 {
		t.Error("PTF25 must be time-symmetric")
	}
	gs := smallGEO().Schema()
	gv, err := GEOView(gs)
	if err != nil {
		t.Fatal(err)
	}
	if gv.Schema().NumDims() != 2 {
		t.Error("GEO view must keep 2 dims")
	}
}

func TestCountViewGroupsAllDims(t *testing.T) {
	gs := smallGEO().Schema()
	v, err := GEOView(gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.GroupBy) != gs.NumDims() {
		t.Errorf("GroupBy = %v", v.GroupBy)
	}
	if len(v.Aggs) != 1 || v.Aggs[0].Kind != view.Count {
		t.Errorf("Aggs = %v", v.Aggs)
	}
}

func TestParseMode(t *testing.T) {
	for _, name := range []string{"real", "random", "correlated", "periodic"} {
		m, err := ParseMode(name)
		if err != nil || m.String() != name {
			t.Errorf("ParseMode(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("unknown mode must fail")
	}
}
