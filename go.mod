module github.com/arrayview/arrayview

go 1.22
