package arrayview

// Macro-benchmarks: one per table/figure of the paper's evaluation. Each
// benchmark runs the corresponding experiment at the paper-shaped default
// scale and reports the headline quantities as custom metrics
// (seconds of simulated maintenance time per strategy). The ivmbench CLI
// prints the full row/series tables; see EXPERIMENTS.md.

import (
	"io"
	"testing"

	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/workload"
)

// benchSpec picks the experiment scale: default (paper-shaped) normally,
// small under -short.
func benchSpec(b *testing.B, ds bench.Dataset, mode workload.BatchMode) bench.Spec {
	b.Helper()
	if testing.Short() {
		return bench.SmallSpec(ds, mode)
	}
	return bench.DefaultSpec(ds, mode)
}

func runFig3(b *testing.B, ds bench.Dataset, mode workload.BatchMode) {
	spec := benchSpec(b, ds, mode)
	var last *bench.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig3(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for name, r := range last.Results {
		b.ReportMetric(r.TotalMaintenance(), name+"-s")
	}
	b.ReportMetric(
		last.Results["baseline"].TotalMaintenance()/last.Results["reassign"].TotalMaintenance(),
		"speedup-x")
}

func BenchmarkFig3PTF5Real(b *testing.B)        { runFig3(b, bench.PTF5, workload.Real) }
func BenchmarkFig3PTF5Correlated(b *testing.B)  { runFig3(b, bench.PTF5, workload.Correlated) }
func BenchmarkFig3PTF5Periodic(b *testing.B)    { runFig3(b, bench.PTF5, workload.Periodic) }
func BenchmarkFig3PTF25Real(b *testing.B)       { runFig3(b, bench.PTF25, workload.Real) }
func BenchmarkFig3PTF25Correlated(b *testing.B) { runFig3(b, bench.PTF25, workload.Correlated) }
func BenchmarkFig3PTF25Periodic(b *testing.B)   { runFig3(b, bench.PTF25, workload.Periodic) }
func BenchmarkFig3GEORandom(b *testing.B)       { runFig3(b, bench.GEO, workload.Random) }
func BenchmarkFig3GEOCorrelated(b *testing.B)   { runFig3(b, bench.GEO, workload.Correlated) }
func BenchmarkFig3GEOPeriodic(b *testing.B)     { runFig3(b, bench.GEO, workload.Periodic) }

func runFig5(b *testing.B, ds bench.Dataset, mode workload.BatchMode) {
	spec := benchSpec(b, ds, mode)
	var last *bench.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Results["baseline"].AvgTripleGen(), "baseline-opt-s")
	b.ReportMetric(last.Results["differential"].AvgOptimization(), "differential-opt-s")
	b.ReportMetric(last.Results["reassign"].AvgOptimization(), "reassign-opt-s")
}

func BenchmarkFig5PTF5(b *testing.B)  { runFig5(b, bench.PTF5, workload.Real) }
func BenchmarkFig5PTF25(b *testing.B) { runFig5(b, bench.PTF25, workload.Real) }
func BenchmarkFig5GEO(b *testing.B)   { runFig5(b, bench.GEO, workload.Random) }

func BenchmarkFig6QueryIntegration(b *testing.B) {
	spec := benchSpec(b, bench.PTF5, workload.Real)
	spec.PTF.NumBatches = 1
	var rows []bench.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig6(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		_ = r
	}
	// The two calibration bars of the paper's discussion.
	for _, r := range rows {
		switch r.Name {
		case "Linf(1)<-L1(1)":
			b.ReportMetric(r.CompleteSeconds/r.ViewSeconds, "view-wins-x")
		case "Linf(1)<-Linf(2)":
			b.ReportMetric(r.ViewSeconds/r.CompleteSeconds, "complete-wins-x")
		}
	}
}

func runFig9(b *testing.B, ds bench.Dataset, mode workload.BatchMode) {
	spec := benchSpec(b, ds, mode)
	var last *bench.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for name, r := range last.Results {
		b.ReportMetric(r.TotalMaintenance()+r.TotalOptimization(), name+"-total-s")
	}
}

func BenchmarkFig9PTF5Correlated(b *testing.B)  { runFig9(b, bench.PTF5, workload.Correlated) }
func BenchmarkFig9PTF25Correlated(b *testing.B) { runFig9(b, bench.PTF25, workload.Correlated) }
func BenchmarkFig9GEOCorrelated(b *testing.B)   { runFig9(b, bench.GEO, workload.Correlated) }

func BenchmarkFig10aBatchSize(b *testing.B) {
	spec := benchSpec(b, bench.PTF25, workload.Real)
	sizes := []int{50, 100, 200, 400, 800, 1600}
	if testing.Short() {
		sizes = []int{50, 100, 200}
	}
	var rows []bench.Fig10aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig10a(io.Discard, spec, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Maintenance["baseline"], "largest-baseline-s")
	b.ReportMetric(last.Maintenance["reassign"], "largest-reassign-s")
}

func BenchmarkFig10bNumBatches(b *testing.B) {
	spec := benchSpec(b, bench.PTF25, workload.Real)
	total := 4000
	counts := []int{1, 2, 5, 10, 20}
	if testing.Short() {
		total = 800
		counts = []int{1, 2, 5}
	}
	var rows []bench.Fig10bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig10b(io.Discard, spec, total, counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Maintenance["reassign"], "most-batches-reassign-s")
}

func BenchmarkFig10cSpread(b *testing.B) {
	spec := benchSpec(b, bench.PTF25, workload.Real)
	spreads := []float64{0.1, 0.2, 0.8}
	var rows []bench.Fig10cRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig10c(io.Discard, spec, spreads)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Maintenance["reassign"], "widest-reassign-s")
}

// Ablations of DESIGN.md §5.

func BenchmarkAblationPairOrder(b *testing.B) {
	spec := benchSpec(b, bench.PTF5, workload.Real)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationPairOrder(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalMaintenance, "random-order-s")
	b.ReportMetric(rows[1].TotalMaintenance, "sorted-order-s")
}

func BenchmarkAblationWindow(b *testing.B) {
	spec := benchSpec(b, bench.GEO, workload.Correlated)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationWindow(io.Discard, spec, []int{0, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalMaintenance, "window0-s")
	b.ReportMetric(rows[1].TotalMaintenance, "window5-s")
}

func BenchmarkAblationCPUQuota(b *testing.B) {
	spec := benchSpec(b, bench.GEO, workload.Correlated)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationCPUQuota(io.Discard, spec, []float64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalMaintenance, "quota0-s")
	b.ReportMetric(rows[1].TotalMaintenance, "quota1-s")
}

func BenchmarkAblationCellPruning(b *testing.B) {
	spec := benchSpec(b, bench.PTF5, workload.Real)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationCellPruning(io.Discard, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalMaintenance, "chunk-gran-s")
	b.ReportMetric(rows[1].TotalMaintenance, "cell-gran-s")
}

func BenchmarkAblationLambda(b *testing.B) {
	spec := benchSpec(b, bench.GEO, workload.Correlated)
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationLambda(io.Discard, spec, []float64{0.1, 0.9})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalMaintenance, "lambda0.1-s")
	b.ReportMetric(rows[1].TotalMaintenance, "lambda0.9-s")
}

func BenchmarkScalingNodes(b *testing.B) {
	spec := benchSpec(b, bench.PTF5, workload.Real)
	counts := []int{2, 4, 8, 16}
	if testing.Short() {
		counts = []int{2, 4}
	}
	var rows []bench.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Scaling(io.Discard, spec, counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Maintenance["reassign"]/last.Maintenance["reassign"], "scaleup-x")
}
